package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"github.com/rip-eda/rip/internal/api"
	"github.com/rip-eda/rip/internal/engine"
)

// ForwardHeader marks a request as already forwarded once. A replica
// receiving it answers locally no matter who the ring says owns the
// shape, so disagreeing member lists (mid-rollout, mid-scale-up) cause
// at most one extra hop, never a loop.
const ForwardHeader = "X-Rip-Forwarded"

type localOnlyKey struct{}

// WithLocalOnly marks the context of an already-forwarded request: the
// Forwarder declines every job under it. The HTTP server applies it
// when ForwardHeader is present.
func WithLocalOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, localOnlyKey{}, true)
}

// IsLocalOnly reports whether forwarding is disabled on this context.
func IsLocalOnly(ctx context.Context) bool {
	v, _ := ctx.Value(localOnlyKey{}).(bool)
	return v
}

// Config describes this replica's place in the ring.
type Config struct {
	// Self is this replica's own address as it appears in Peers
	// ("host:port" or a full base URL).
	Self string
	// Peers lists every replica's address, self included (self is added
	// if absent — every member must use the same full list).
	Peers []string
	// Vnodes is the virtual-node count per member (0 = default 128).
	Vnodes int
	// Timeout bounds each forwarded request (0 = 15s). The request's
	// own deadline still applies on top.
	Timeout time.Duration
	// DisableFallback switches peer failures from "solve locally" to an
	// explicit peer_unavailable error — for deployments that would
	// rather shed load than absorb an owner's traffic on top of their
	// own.
	DisableFallback bool
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker (0 = 3); BreakerCooldown is how long it
	// stays open before a half-open probe (0 = 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// Node routes jobs whose shapes other replicas own: it implements
// engine.Forwarder, so installing it on the Multi (SetForwarder) makes
// every solve path — singles, batches, streams — ring-aware with
// fan-out bounded by the worker pool.
type Node struct {
	self     string
	ring     *Ring
	client   *http.Client
	timeout  time.Duration
	fallback bool
	breakers map[string]*breaker

	forwards  atomic.Uint64 // answered by a peer
	failures  atomic.Uint64 // forward attempts that failed
	fallbacks atomic.Uint64 // failures absorbed by a local solve
	sigMisses atomic.Uint64 // jobs declined as unroutable
}

// errPeerDown marks a forward that never left: the peer's breaker is
// open.
var errPeerDown = fmt.Errorf("cluster: peer circuit breaker open")

// New builds the replica's ring node. The Multi is attached separately
// (engine.Multi.SetForwarder) so construction cannot race traffic.
func New(cfg Config) (*Node, error) {
	if strings.TrimSpace(cfg.Self) == "" {
		return nil, fmt.Errorf("cluster: Self address is required")
	}
	self := normalize(cfg.Self)
	members := []string{self}
	for _, p := range cfg.Peers {
		if strings.TrimSpace(p) == "" {
			continue
		}
		members = append(members, normalize(p))
	}
	ring, err := NewRing(members, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 15 * time.Second
	}
	threshold := cfg.BreakerThreshold
	if threshold <= 0 {
		threshold = 3
	}
	cooldown := cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	n := &Node{
		self:     self,
		ring:     ring,
		client:   client,
		timeout:  timeout,
		fallback: !cfg.DisableFallback,
		breakers: make(map[string]*breaker),
	}
	for _, m := range ring.Members() {
		if m != self {
			n.breakers[m] = newBreaker(threshold, cooldown)
		}
	}
	return n, nil
}

// normalize turns "host:port" into a base URL and strips trailing
// slashes so ring membership compares canonically.
func normalize(addr string) string {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// Self returns this replica's canonical ring address.
func (n *Node) Self() string { return n.self }

// Peers lists the ring members, sorted.
func (n *Node) Peers() []string { return n.ring.Members() }

// owner resolves the job's owning replica; handled=false means the job
// stays local (already forwarded, unroutable, or owned here).
func (n *Node) owner(ctx context.Context, m *engine.Multi, j engine.Job) (string, bool) {
	if IsLocalOnly(ctx) {
		return "", false
	}
	sig, ok := m.Signature(j)
	if !ok {
		n.sigMisses.Add(1)
		return "", false
	}
	o := n.ring.Owner(sig)
	if o == n.self {
		return "", false
	}
	return o, true
}

// Forwarder binds the node to the Multi it fronts, yielding the hook
// SetForwarder takes. (The node itself carries no Multi pointer: the
// Multi owns the node's lifetime, not the reverse.)
func (n *Node) Forwarder(m *engine.Multi) engine.Forwarder {
	return &forwarder{n: n, m: m}
}

type forwarder struct {
	n *Node
	m *engine.Multi
}

func (f *forwarder) ForwardSolve(ctx context.Context, j engine.Job) (engine.Result, bool) {
	n := f.n
	owner, ok := n.owner(ctx, f.m, j)
	if !ok {
		return engine.Result{}, false
	}
	var out api.Response
	if err := n.post(ctx, owner, "/v1/optimize", api.FromJob(j), &out); err != nil {
		err, handled := n.fail(owner, err)
		return engine.Result{Net: j.Net, TreeNet: j.TreeNet, Tech: j.Tech, Err: err}, handled
	}
	n.forwards.Add(1)
	return api.ToResult(out, j), true
}

func (f *forwarder) ForwardFront(ctx context.Context, j engine.Job) (engine.FrontResult, bool) {
	n := f.n
	owner, ok := n.owner(ctx, f.m, j)
	if !ok {
		return engine.FrontResult{}, false
	}
	var out api.FrontResponse
	if err := n.post(ctx, owner, "/v1/front", api.FromJob(j), &out); err != nil {
		err, handled := n.fail(owner, err)
		return engine.FrontResult{Net: j.Net, TreeNet: j.TreeNet, Tech: j.Tech, Err: err}, handled
	}
	n.forwards.Add(1)
	return api.ToFrontResult(out, j), true
}

// fail accounts one peer failure and picks the degradation: fallback
// mode declines the job (handled=false → the Multi solves locally);
// strict mode answers with a retryable peer_unavailable error.
func (n *Node) fail(owner string, err error) (error, bool) {
	n.failures.Add(1)
	if n.fallback {
		n.fallbacks.Add(1)
		return nil, false
	}
	return api.Coded(api.CodePeerUnavailable,
		fmt.Errorf("cluster: owner %s unavailable: %w", owner, err)), true
}

// post forwards one request to the owner and decodes its response.
// Any decodable response with a verdict-class status is authoritative
// (including the owner's own per-net errors); transport failures,
// overload shedding (429), unavailability (503) and server errors
// count against the owner's breaker and return an error.
func (n *Node) post(ctx context.Context, owner, path string, payload, out any) error {
	br := n.breakers[owner]
	if br == nil {
		return fmt.Errorf("cluster: %s is not a ring member", owner)
	}
	if !br.allow(time.Now()) {
		return errPeerDown
	}
	body, err := json.Marshal(payload)
	if err != nil {
		br.success() // not the peer's fault; release the half-open probe
		return fmt.Errorf("cluster: encoding forward: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, n.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+path, bytes.NewReader(body))
	if err != nil {
		br.success()
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, "1")
	resp, err := n.client.Do(req)
	if err != nil {
		br.failure(time.Now())
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		br.failure(time.Now())
		return err
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout, http.StatusInternalServerError,
		http.StatusBadGateway:
		br.failure(time.Now())
		return fmt.Errorf("cluster: owner answered %s", resp.Status)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		br.failure(time.Now())
		return fmt.Errorf("cluster: undecodable owner response (%s): %w", resp.Status, err)
	}
	br.success()
	return nil
}

// Stats is a point-in-time snapshot of the node's forwarding health.
type Stats struct {
	// Forwards counts jobs answered by their owning peer.
	Forwards uint64
	// Failures counts forward attempts that failed (transport error,
	// peer overload, open breaker).
	Failures uint64
	// Fallbacks counts failures absorbed by a local solve.
	Fallbacks uint64
	// Unroutable counts jobs declined because no signature exists.
	Unroutable uint64
	// OpenBreakers counts peers currently skipped.
	OpenBreakers int
	// Peers is the ring size (self included).
	Peers int
}

// Stats snapshots the forwarding counters.
func (n *Node) Stats() Stats {
	st := Stats{
		Forwards:   n.forwards.Load(),
		Failures:   n.failures.Load(),
		Fallbacks:  n.fallbacks.Load(),
		Unroutable: n.sigMisses.Load(),
		Peers:      len(n.ring.Members()),
	}
	now := time.Now()
	for _, br := range n.breakers {
		if br.open(now) {
			st.OpenBreakers++
		}
	}
	return st
}
