package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/rip-eda/rip/internal/repeater"
)

// Table2Row is one granularity's line in the paper's Table 2.
type Table2Row struct {
	// G is the DP width granularity gDP in units of u.
	G float64
	// LibSize is the resulting library size over the fixed (10u, 400u)
	// width range.
	LibSize int
	// DeltaPct is the mean power savings of RIP over the DP scheme across
	// all feasible cases.
	DeltaPct float64
	// Violations counts DP infeasibilities (excluded from DeltaPct).
	Violations int
	// TDP and TRIP are the mean per-case wall-clock times.
	TDP, TRIP time.Duration
	// Speedup is TDP / TRIP.
	Speedup float64
	// GeneratedDP sums the DP's generated partial solutions (a hardware-
	// independent cost measure alongside wall-clock).
	GeneratedDP int
}

// Table2Result is the full reproduction of Table 2.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 reproduces the paper's Table 2: the DP baseline uses a library
// with the fixed width range (10u, 400u) and granularity gDP swept over
// granularities (paper: 40, 30, 20, 10), while RIP runs its standard
// configuration. As gDP shrinks the DP's quality approaches RIP's but its
// runtime grows; RIP's runtime stays flat.
func Table2(s *Setup, granularities []float64) (*Table2Result, error) {
	if len(granularities) == 0 {
		granularities = []float64{40, 30, 20, 10}
	}
	cases, err := s.Prepare()
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}
	for _, g := range granularities {
		lib, err := repeater.Range(10, 400, g)
		if err != nil {
			return nil, err
		}
		row := Table2Row{G: g, LibSize: lib.Size()}
		var sumSavings float64
		var nSavings int
		var dpTotal, ripTotal time.Duration
		var nCases int
		for _, c := range cases {
			for _, mult := range s.Multipliers {
				target := mult * c.TMin
				rip, tRIP, err := s.solveRIP(c, target)
				if err != nil {
					return nil, err
				}
				base, tDP, err := s.solveBaseline(c, lib, target)
				if err != nil {
					return nil, err
				}
				dpTotal += tDP
				ripTotal += tRIP
				nCases++
				row.GeneratedDP += base.Stats.Generated
				if !base.Feasible {
					row.Violations++
					continue
				}
				if !rip.Solution.Feasible {
					continue
				}
				sumSavings += savingsPct(base.TotalWidth, rip.Solution.TotalWidth)
				nSavings++
			}
		}
		if nSavings > 0 {
			row.DeltaPct = sumSavings / float64(nSavings)
		}
		if nCases > 0 {
			row.TDP = dpTotal / time.Duration(nCases)
			row.TRIP = ripTotal / time.Duration(nCases)
		}
		if row.TRIP > 0 {
			row.Speedup = float64(row.TDP) / float64(row.TRIP)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the result as an ASCII table shaped like the paper's.
func (r *Table2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 2. Power savings and speedup tradeoff (DP width range (10u,400u)).")
	fmt.Fprintln(w, "gDP(u)  |lib|   Δ(%)   viol   TDP/case    TRIP/case   speedup   DP options")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6g %6d %7.2f %6d %11s %11s %8.1fx %12d\n",
			row.G, row.LibSize, row.DeltaPct, row.Violations,
			row.TDP.Round(time.Microsecond), row.TRIP.Round(time.Microsecond),
			row.Speedup, row.GeneratedDP)
	}
}

// WriteCSV writes the rows as CSV with a header.
func (r *Table2Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "g_dp_u,lib_size,delta_pct,violations,tdp_ns,trip_ns,speedup,dp_generated"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%g,%d,%.4f,%d,%d,%d,%.3f,%d\n",
			row.G, row.LibSize, row.DeltaPct, row.Violations,
			row.TDP.Nanoseconds(), row.TRIP.Nanoseconds(), row.Speedup, row.GeneratedDP); err != nil {
			return err
		}
	}
	return nil
}
