package dp

// This file preserves the pre-Solver rendering of the DP — per-level
// slices, a full 3-key sort.Slice per level, and the middle-insert Pareto
// front — verbatim, as the reference the rewritten kernel is differenced
// against. The differential tests require (delay, total width, feasibility)
// and the work Stats to be bit-identical between the two.

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"github.com/rip-eda/rip/internal/delay"
)

// solveReference is the old dp.Solve.
func solveReference(ev *delay.Evaluator, opts Options) (Solution, error) {
	if opts.Library.Size() == 0 {
		return Solution{}, errors.New("dp: empty repeater library")
	}
	if opts.Objective == MinPower && !(opts.Target > 0) {
		return Solution{}, fmt.Errorf("dp: min-power needs a positive timing target, got %g", opts.Target)
	}
	positions := opts.Positions
	if positions == nil {
		if !(opts.Pitch > 0) {
			return Solution{}, errors.New("dp: need explicit Positions or a positive Pitch")
		}
		positions = ev.Line.LegalPositions(opts.Pitch)
	} else {
		positions = append([]float64(nil), positions...)
		sort.Float64s(positions)
		for i, x := range positions {
			if !ev.Line.Legal(x) {
				return Solution{}, fmt.Errorf("dp: candidate %d at %g is not a legal repeater position", i, x)
			}
			if i > 0 && x == positions[i-1] {
				return Solution{}, fmt.Errorf("dp: duplicate candidate position %g", x)
			}
		}
	}

	t := ev.Tech
	widths := opts.Library.Widths()
	stats := Stats{Candidates: len(positions)}

	levels := make([][]option, len(positions)+1)
	recv := option{c: t.Co * ev.Wr, d: 0, w: 0, act: -1, next: -1}
	levels[len(positions)] = []option{recv}
	prevPos := ev.Line.Length()

	bound := math.Inf(1)
	if opts.Objective == MinPower {
		bound = opts.Target
	}

	for k := len(positions) - 1; k >= 0; k-- {
		x := positions[k]
		down := levels[k+1]
		cw := ev.Line.C(x, prevPos)
		m := ev.Line.M(x, prevPos)
		rw := ev.Line.R(x, prevPos)

		gen := make([]option, 0, len(down)*(1+len(widths)))
		for di, o := range down {
			baseC := o.c + cw
			baseD := o.d + rw*o.c + m
			if baseD > bound {
				continue
			}
			gen = append(gen, option{c: baseC, d: baseD, w: o.w, act: -1, next: int32(di)})
			for wi, wrep := range widths {
				d := t.Rs*t.Cp + t.Rs/wrep*baseC + baseD
				if d > bound {
					continue
				}
				gen = append(gen, option{c: t.Co * wrep, d: d, w: o.w + wrep, act: int32(wi), next: int32(di)})
			}
		}
		stats.Generated += len(gen)
		if opts.MaxGenerated > 0 && stats.Generated > opts.MaxGenerated {
			return Solution{Stats: stats}, fmt.Errorf("%w: %d partial solutions (limit %d)",
				ErrBudget, stats.Generated, opts.MaxGenerated)
		}
		kept := pruneReference(gen, opts.Objective == MinPower)
		stats.Kept += len(kept)
		if len(kept) > stats.MaxPerLevel {
			stats.MaxPerLevel = len(kept)
		}
		if len(kept) == 0 {
			return Solution{Feasible: false, Stats: stats}, nil
		}
		levels[k] = kept
		prevPos = x
	}

	first := levels[0]
	cw := ev.Line.C(0, prevPos)
	m := ev.Line.M(0, prevPos)
	rw := ev.Line.R(0, prevPos)
	bestIdx := -1
	bestDelay := math.Inf(1)
	bestWidth := math.Inf(1)
	for i, o := range first {
		total := t.Rs*t.Cp + t.Rs/ev.Wd*(o.c+cw) + rw*o.c + m + o.d
		switch opts.Objective {
		case MinPower:
			if total > opts.Target {
				continue
			}
			if o.w < bestWidth || (o.w == bestWidth && total < bestDelay) {
				bestIdx, bestWidth, bestDelay = i, o.w, total
			}
		case MinDelay:
			if total < bestDelay {
				bestIdx, bestWidth, bestDelay = i, o.w, total
			}
		}
	}
	if bestIdx < 0 {
		return Solution{Feasible: false, Stats: stats}, nil
	}

	asg := reconstructReference(levels, positions, widths, bestIdx)
	return Solution{
		Assignment: asg,
		Delay:      bestDelay,
		TotalWidth: asg.TotalWidth(),
		Feasible:   true,
		Stats:      stats,
	}, nil
}

// reconstructReference walks per-level parent pointers (next indexes the
// next level's kept slice in the reference layout).
func reconstructReference(levels [][]option, positions, widths []float64, idx int) delay.Assignment {
	var asg delay.Assignment
	for k := 0; k < len(positions); k++ {
		o := levels[k][idx]
		if o.act >= 0 {
			asg.Positions = append(asg.Positions, positions[k])
			asg.Widths = append(asg.Widths, widths[o.act])
		}
		idx = int(o.next)
	}
	return asg
}

// pruneReference is the old dp.prune: full 3-key sort, then a middle-insert
// (d, w) front. Note the destructive 2-D behavior (it zeroes widths in
// place) that the Solver's pruner deliberately does not share.
func pruneReference(opts []option, width bool) []option {
	if len(opts) <= 1 {
		return opts
	}
	if !width {
		for i := range opts {
			opts[i].w = 0
		}
	}
	sort.Slice(opts, func(i, j int) bool {
		a, b := opts[i], opts[j]
		if a.c != b.c {
			return a.c < b.c
		}
		if a.d != b.d {
			return a.d < b.d
		}
		return a.w < b.w
	})
	front := make([]dw, 0, 16)
	kept := opts[:0]
	for _, o := range opts {
		i := sort.Search(len(front), func(i int) bool { return front[i].d > o.d })
		if i > 0 && front[i-1].w <= o.w {
			continue
		}
		kept = append(kept, o)
		j := i
		for j < len(front) && front[j].w >= o.w {
			j++
		}
		front = append(front[:i], append([]dw{{o.d, o.w}}, front[j:]...)...)
	}
	return kept
}

// diffSolutions fails the test unless the two solutions agree bit-exactly
// on feasibility, delay, total width and work stats.
func diffSolutions(t *testing.T, label string, got, want Solution) {
	t.Helper()
	if got.Feasible != want.Feasible {
		t.Fatalf("%s: feasibility %v != reference %v", label, got.Feasible, want.Feasible)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v != reference %+v", label, got.Stats, want.Stats)
	}
	if !got.Feasible {
		return
	}
	if got.Delay != want.Delay {
		t.Fatalf("%s: delay %.17g != reference %.17g", label, got.Delay, want.Delay)
	}
	if got.TotalWidth != want.TotalWidth {
		t.Fatalf("%s: total width %.17g != reference %.17g", label, got.TotalWidth, want.TotalWidth)
	}
}
