package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rip-eda/rip/internal/netgen"
	"github.com/rip-eda/rip/internal/tech"
)

// smallSetup trims the corpus and target sweep so package tests stay fast;
// the full-size runs live in the ripbench CLI and the root benchmarks.
func smallSetup(t *testing.T, nets int, mults []float64) *Setup {
	t.Helper()
	s, err := NewSetup(7)
	if err != nil {
		t.Fatal(err)
	}
	s.Nets = s.Nets[:nets]
	s.Multipliers = mults
	return s
}

func TestPrepareComputesTMin(t *testing.T) {
	s := smallSetup(t, 3, []float64{1.2})
	cases, err := s.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("got %d cases", len(cases))
	}
	for _, c := range cases {
		if !(c.TMin > 0) {
			t.Errorf("%s: τmin %g", c.Net.Name, c.TMin)
		}
		if !(c.TMin < c.Eval.MinUnbuffered()) {
			t.Errorf("%s: τmin should beat the unbuffered wire", c.Net.Name)
		}
	}
	// Idempotent.
	again, err := s.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &cases[0] {
		t.Error("Prepare should cache")
	}
}

func TestPrepareValidation(t *testing.T) {
	s := smallSetup(t, 2, nil)
	if _, err := s.Prepare(); err == nil {
		t.Error("no multipliers should fail")
	}
	s2 := smallSetup(t, 2, []float64{1.2})
	s2.Nets = nil
	if _, err := s2.Prepare(); err == nil {
		t.Error("no nets should fail")
	}
}

func TestTable1SmallRun(t *testing.T) {
	s := smallSetup(t, 3, []float64{1.1, 1.5, 1.9})
	res, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.RIPViolations != 0 {
		t.Errorf("RIP violated timing %d times; the paper's pipeline never does", res.RIPViolations)
	}
	// The g=40u mean savings should be positive on average (paper: 9.53%).
	if !(res.Ave.DMean40 > 0) {
		t.Errorf("mean savings vs g=40u = %.2f%%, want positive", res.Ave.DMean40)
	}
	// ΔMax columns are maxima of the per-target savings, so ΔMax ≥ ΔMean.
	for _, row := range res.Rows {
		if row.DMax40 < row.DMean40-1e-9 {
			t.Errorf("%s: ΔMax40 %.2f < ΔMean40 %.2f", row.Net, row.DMax40, row.DMean40)
		}
		if row.DMax20 < row.DMean20-1e-9 {
			t.Errorf("%s: ΔMax20 %.2f < ΔMean20 %.2f", row.Net, row.DMax20, row.DMean20)
		}
		if row.V10 < 0 || row.V10 > len(s.Multipliers) {
			t.Errorf("%s: VDP %d out of range", row.Net, row.V10)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Ave") {
		t.Errorf("render output incomplete:\n%s", out)
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1+3+1 {
		t.Errorf("CSV line count %d, want header+rows+ave", lines)
	}
}

func TestFigure7SmallRun(t *testing.T) {
	s := smallSetup(t, 4, []float64{1.05, 1.3, 1.6, 1.9})
	res, err := Figure7(s, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.G10) != 4 || len(res.G40) != 4 {
		t.Fatalf("panel sizes %d, %d", len(res.G10), len(res.G40))
	}
	// Targets must ascend and equal mult·τmin.
	for i, p := range res.G10 {
		want := s.Multipliers[i] * res.TMin
		if p.Target != want {
			t.Errorf("point %d target %g, want %g", i, p.Target, want)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("render output missing title")
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a_g10") || !strings.Contains(buf.String(), "b_g40") {
		t.Error("CSV missing panels")
	}
	// Explicit index selection must work and out-of-range must fail.
	if _, err := Figure7(s, 1); err != nil {
		t.Errorf("explicit index: %v", err)
	}
	if _, err := Figure7(s, 99); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestTable2SmallRun(t *testing.T) {
	s := smallSetup(t, 2, []float64{1.2, 1.6})
	res, err := Table2(s, []float64{40, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	coarse, fine := res.Rows[0], res.Rows[1]
	if coarse.LibSize != 10 || fine.LibSize != 40 {
		t.Errorf("library sizes %d, %d; want 10, 40", coarse.LibSize, fine.LibSize)
	}
	// The paper's tradeoff: finer DP granularity closes the quality gap
	// but costs more work.
	if !(fine.DeltaPct <= coarse.DeltaPct+1e-9) {
		t.Errorf("savings should shrink with finer gDP: %.2f%% vs %.2f%%", fine.DeltaPct, coarse.DeltaPct)
	}
	if !(fine.GeneratedDP > coarse.GeneratedDP) {
		t.Errorf("finer library must generate more DP options: %d vs %d", fine.GeneratedDP, coarse.GeneratedDP)
	}
	if fine.TDP <= 0 || fine.TRIP <= 0 {
		t.Error("timings not recorded")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("render output missing title")
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("CSV line count %d, want 3", lines)
	}
}

func TestAblationsSmallRun(t *testing.T) {
	s := smallSetup(t, 2, []float64{1.3})
	res, err := Ablations(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 6 {
		t.Fatalf("expected several variants, got %d", len(res.Rows))
	}
	if res.Rows[0].Name != "default (paper §6)" {
		t.Errorf("first row should be the default, got %q", res.Rows[0].Name)
	}
	for _, row := range res.Rows {
		if row.Infeasible > 0 {
			t.Errorf("variant %q infeasible %d times", row.Name, row.Infeasible)
		}
		if !(row.MeanWidth > 0) {
			t.Errorf("variant %q mean width %g", row.Name, row.MeanWidth)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Ablations") {
		t.Error("render output missing title")
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultMultipliersMatchPaper(t *testing.T) {
	m := DefaultMultipliers()
	if len(m) != 20 {
		t.Fatalf("got %d multipliers, want 20", len(m))
	}
	if m[0] != 1.05 || m[19] != 2.00 {
		t.Errorf("range [%g, %g], want [1.05, 2.00]", m[0], m[19])
	}
}

func TestSetupUsesPaperCorpus(t *testing.T) {
	s, err := NewSetup(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nets) != 20 {
		t.Errorf("corpus size %d, want 20", len(s.Nets))
	}
	// Same distribution as netgen.Paper20.
	ref, err := netgen.Paper20(tech.T180(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if s.Nets[i].Line.Length() != ref[i].Line.Length() {
			t.Fatalf("net %d differs from Paper20", i)
		}
	}
}

// TestFigure8SmallRun: the technology scaling study runs as one mixed
// multi-node batch, covers all four nodes, shows more repeater width at
// smaller nodes (relatively more resistive wires), and renders.
func TestFigure8SmallRun(t *testing.T) {
	res, err := Figure8(7, 2, []float64{1.2, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4*2 {
		t.Fatalf("%d rows, want 8", len(res.Rows))
	}
	byTech := map[string]float64{}
	for _, row := range res.Rows {
		if row.Infeasible > 0 {
			t.Fatalf("%s ×%.2f: %d infeasible", row.Tech, row.Multiplier, row.Infeasible)
		}
		if row.Multiplier == 1.2 {
			byTech[row.Tech] = row.AvgWidthU
		}
	}
	if !(byTech["65nm"] > byTech["180nm"]) {
		t.Fatalf("expected denser repeaters at 65nm: %v", byTech)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "65nm") {
		t.Fatalf("render: %s", buf.String())
	}
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}
