package dp

import (
	"math"
	"slices"
)

// Pruning strategy
//
// The naive rendering of Pareto pruning sorts the whole generated set on
// the 3-key (c, d, w) order and filters it through a (d, w) front — an
// O(G·log G) sort with a closure comparator over G = |down|·(|B|+1)
// options, every level. The Solver instead exploits the generation
// structure (the Lillis–Cheng–Lin load-class observation, the paper's
// reference [14]): an option created by inserting repeater width w_i has
// load c = Co·w_i regardless of which downstream option it extends, so the
// generated set splits into |B|+1 buckets — one per repeater action plus
// the no-repeater bucket — where every repeater bucket has a single c
// value.
//
//   - Within a repeater bucket, 3-D dominance degenerates to 2-D (d, w)
//     dominance: a 2-key sort plus a linear sweep keeps the bucket's front
//     (d ascending, w strictly descending). Under the delay objective the
//     whole bucket collapses to its min-d element with no sort at all.
//   - The no-repeater bucket inherits the downstream level's (c, d, w)
//     order (kept runs are emitted sorted), so it is already sorted; a
//     linear check guards the rare rounding collision that breaks the
//     inheritance, re-sorting only then.
//   - The bucket fronts are then k-way merged in ascending (c, d, w)
//     order through one incremental (d, w) front, which performs the exact
//     dominance filter of the classic algorithm without ever sorting the
//     full generated set.
//
// The result is exactly the set of non-dominated distinct (c, d, w) values
// (one representative each), emitted in ascending (c, d, w) order — the
// same value set the reference O(G log G + G·F) prune keeps, which the
// property tests in prune_test.go verify against an O(G²) dominance
// filter.

// dw is one (delay, width) Pareto-front entry.
type dw struct{ d, w float64 }

// mergeHead is one cursor of the k-way bucket merge.
type mergeHead struct {
	b int32 // bucket index
	i int32 // next unconsumed option in that bucket
}

// pruner holds the bucketed-prune scratch. Buffers are retained across
// levels and solves; bucket 0 is the no-repeater action, bucket i+1 the
// library's width index i.
type pruner struct {
	buckets [][]option
	front   []dw
	heap    []mergeHead
}

// reset prepares nb buckets for a new level, keeping allocated capacity.
func (p *pruner) reset(nb int) {
	if cap(p.buckets) < nb {
		grown := make([][]option, nb)
		copy(grown, p.buckets)
		p.buckets = grown
	}
	p.buckets = p.buckets[:nb]
	for i := range p.buckets {
		p.buckets[i] = p.buckets[i][:0]
	}
}

// cmpOpt orders options by (c, d, w) ascending — (c, d) only when the
// width coordinate is ignored (2-D mode). Width-blindness is a comparison
// concern: the options' real widths are never modified.
func cmpOpt(a, b *option, threeD bool) int {
	switch {
	case a.c != b.c:
		if a.c < b.c {
			return -1
		}
		return 1
	case a.d != b.d:
		if a.d < b.d {
			return -1
		}
		return 1
	case threeD && a.w != b.w:
		if a.w < b.w {
			return -1
		}
		return 1
	}
	return 0
}

// pruneInto removes dominated options from the filled buckets and appends
// the survivors to dst in ascending (c, d, w) order, returning the
// extended slice. With threeD it applies the 3-D Pareto rule on (c, d, w);
// otherwise the 2-D rule on (c, d), comparing as if every width were zero
// without mutating any option.
func (p *pruner) pruneInto(dst []option, threeD bool) []option {
	// Stage 1: reduce each bucket to its own front.
	//
	// Bucket 0 (no repeater) carries arbitrary c values but inherits the
	// downstream kept order; verify and only sort on the rare violation.
	b0 := p.buckets[0]
	if !slices.IsSortedFunc(b0, func(a, b option) int { return cmpOpt(&a, &b, threeD) }) {
		slices.SortFunc(b0, func(a, b option) int { return cmpOpt(&a, &b, threeD) })
	}
	for bi := 1; bi < len(p.buckets); bi++ {
		b := p.buckets[bi]
		if len(b) <= 1 {
			continue
		}
		if !threeD {
			// Constant c, width ignored: the min-d element dominates the
			// whole bucket. Keep the first minimum.
			best := 0
			for i := 1; i < len(b); i++ {
				if b[i].d < b[best].d {
					best = i
				}
			}
			b[0] = b[best]
			p.buckets[bi] = b[:1]
			continue
		}
		// Constant c: 2-D (d, w) front. Sort by (d, w) and keep strictly
		// decreasing widths.
		slices.SortFunc(b, func(a, b option) int {
			switch {
			case a.d != b.d:
				if a.d < b.d {
					return -1
				}
				return 1
			case a.w != b.w:
				if a.w < b.w {
					return -1
				}
				return 1
			}
			return 0
		})
		out := b[:0]
		minW := math.Inf(1)
		for i := range b {
			if b[i].w < minW {
				minW = b[i].w
				out = append(out, b[i])
			}
		}
		p.buckets[bi] = out
	}

	// Stage 2: k-way merge of the bucket fronts in ascending (c, d, w)
	// order through a single incremental (d, w) front. Every run is sorted
	// in that order (repeater buckets have constant c and ascending d), so
	// a small binary heap over the run heads yields the global order.
	p.heap = p.heap[:0]
	for bi := range p.buckets {
		if len(p.buckets[bi]) > 0 {
			p.heap = append(p.heap, mergeHead{b: int32(bi)})
		}
	}
	for i := len(p.heap)/2 - 1; i >= 0; i-- {
		p.siftDown(i, threeD)
	}

	p.front = p.front[:0]
	for len(p.heap) > 0 {
		h := p.heap[0]
		o := p.buckets[h.b][h.i]
		if int(h.i)+1 < len(p.buckets[h.b]) {
			p.heap[0].i++
		} else {
			last := len(p.heap) - 1
			p.heap[0] = p.heap[last]
			p.heap = p.heap[:last]
		}
		p.siftDown(0, threeD)

		// front holds kept (d, w) pairs sorted by d ascending with
		// strictly decreasing w; every entry's c ≤ o.c by merge order, so
		// o is dominated iff some entry has d ≤ o.d and w ≤ o.w.
		ow := o.w
		if !threeD {
			ow = 0
		}
		lo, hi := 0, len(p.front)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if p.front[mid].d > o.d {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo > 0 && p.front[lo-1].w <= ow {
			continue // dominated (or a duplicate of a kept value)
		}
		dst = append(dst, o)
		// Insert (o.d, ow); drop entries it dominates (d ≥ o.d, w ≥ ow).
		j := lo
		for j < len(p.front) && p.front[j].w >= ow {
			j++
		}
		if j == lo {
			p.front = append(p.front, dw{})
			copy(p.front[lo+1:], p.front[lo:])
			p.front[lo] = dw{o.d, ow}
		} else {
			p.front[lo] = dw{o.d, ow}
			p.front = append(p.front[:lo+1], p.front[j:]...)
		}
	}
	return dst
}

// headLess orders merge cursors by their head option's (c, d, w), breaking
// exact value ties by bucket index for determinism.
func (p *pruner) headLess(x, y mergeHead, threeD bool) bool {
	c := cmpOpt(&p.buckets[x.b][x.i], &p.buckets[y.b][y.i], threeD)
	if c != 0 {
		return c < 0
	}
	return x.b < y.b
}

// siftDown restores the heap property from index i.
func (p *pruner) siftDown(i int, threeD bool) {
	for {
		l := 2*i + 1
		if l >= len(p.heap) {
			return
		}
		min := l
		if r := l + 1; r < len(p.heap) && p.headLess(p.heap[r], p.heap[l], threeD) {
			min = r
		}
		if !p.headLess(p.heap[min], p.heap[i], threeD) {
			return
		}
		p.heap[i], p.heap[min] = p.heap[min], p.heap[i]
		i = min
	}
}
