package engine

import (
	"math"
	"testing"

	"github.com/rip-eda/rip/internal/delay"
	"github.com/rip-eda/rip/internal/dp"
	"github.com/rip-eda/rip/internal/netgen"
	"github.com/rip-eda/rip/internal/tech"
)

// TestFrontCounterSingleIncrement is the regression test for the cache
// counter discipline: every lookup increments exactly one of
// hits/misses/rejected, ONCE — a multi-budget hit whose every budget is
// re-verified on the cached front still counts as one hit, and a budget
// the front cannot meet counts as one rejection (never a miss on top).
func TestFrontCounterSingleIncrement(t *testing.T) {
	eng := mustEngine(t, Options{Workers: 1})
	net := corpus(t, 41, 1)[0]

	assertStats := func(step string, hits, misses, rejected uint64) {
		t.Helper()
		st := eng.CacheStats()
		if st.Hits != hits || st.Misses != misses || st.Rejected != rejected {
			t.Fatalf("%s: hits/misses/rejected = %d/%d/%d, want %d/%d/%d",
				step, st.Hits, st.Misses, st.Rejected, hits, misses, rejected)
		}
		if total := st.Hits + st.Misses + st.Rejected; total != hits+misses+rejected {
			t.Fatalf("%s: lookup accounting drifted: %+v", step, st)
		}
	}

	// 1. Cold single-budget solve: one miss.
	r1 := eng.Solve(Job{Net: net, TargetMult: 1.3})
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	tmin := r1.TMin
	assertStats("cold solve", 0, 1, 0)

	// 2. Same job again: one hit.
	if r := eng.Solve(Job{Net: net, TargetMult: 1.3}); r.Err != nil || !r.CacheHit {
		t.Fatalf("repeat solve: err=%v hit=%v", r.Err, r.CacheHit)
	}
	assertStats("repeat solve", 1, 1, 0)

	// 3. Five-budget sweep served from the same front: still ONE hit,
	// even though five points are re-verified — this is the double-count
	// hazard the counter discipline exists to prevent.
	ladder := []float64{1.3 * tmin, 1.5 * tmin, 2 * tmin, 3 * tmin, 5 * tmin}
	r3 := eng.Solve(Job{Net: net, Budgets: ladder})
	if r3.Err != nil || !r3.CacheHit {
		t.Fatalf("sweep: err=%v hit=%v", r3.Err, r3.CacheHit)
	}
	if len(r3.Sweep) != len(ladder) {
		t.Fatalf("sweep answered %d budgets, want %d", len(r3.Sweep), len(ladder))
	}
	assertStats("multi-budget sweep", 2, 1, 0)

	// 4. A budget below the achievable minimum rejects the entry — one
	// rejection, and the fresh solve that follows does not add a miss.
	r4 := eng.Solve(Job{Net: net, Budgets: []float64{0.5 * tmin}})
	if r4.Err != nil {
		t.Fatal(r4.Err)
	}
	if r4.Sweep[0].Res.Solution.Feasible {
		t.Fatal("0.5×τmin should be infeasible")
	}
	assertStats("infeasible budget", 2, 1, 1)

	// Front lookups: one answer per budget asked (1+1+5+1), regardless of
	// how many lookups the cache counters charged.
	fs := eng.FrontStats()
	if fs.Lookups != 8 {
		t.Fatalf("front lookups = %d, want 8", fs.Lookups)
	}
	if fs.Solves != 2 { // cold solve + post-rejection re-solve
		t.Fatalf("front solves = %d, want 2", fs.Solves)
	}
}

// TestFrontMonotoneNoDominated pins the served curve's Pareto
// invariants for both net kinds: points sorted by strictly increasing
// delay, strictly decreasing total width (delay↑ ⇒ power↓), so no point
// dominates another.
func TestFrontMonotoneNoDominated(t *testing.T) {
	eng := mustEngine(t, Options{Workers: 2})
	var fronts []FrontResult
	for _, n := range corpus(t, 43, 3) {
		fronts = append(fronts, eng.Front(Job{Net: n}))
	}
	for _, tn := range treeCorpus(t, 44, 3) {
		fronts = append(fronts, eng.Front(Job{TreeNet: tn, TargetMult: 1.3})) // uniform mode
		fronts = append(fronts, eng.Front(Job{TreeNet: tn}))                  // embedded mode
	}
	for fi, fr := range fronts {
		if fr.Err != nil {
			t.Fatalf("front %d: %v", fi, fr.Err)
		}
		if len(fr.Points) == 0 {
			t.Fatalf("front %d: empty", fi)
		}
		timing := func(p FrontPoint) float64 {
			if p.Delay != 0 {
				return p.Delay
			}
			return -p.Slack // embedded mode: later (worse) slack = slower point
		}
		for i := 1; i < len(fr.Points); i++ {
			a, b := fr.Points[i-1], fr.Points[i]
			if !(timing(b) > timing(a)) {
				t.Fatalf("front %d: points %d,%d not strictly increasing in delay: %g, %g",
					fi, i-1, i, timing(a), timing(b))
			}
			if !(b.TotalWidth < a.TotalWidth) {
				t.Fatalf("front %d: point %d (width %g) does not undercut point %d (width %g): dominated",
					fi, i, b.TotalWidth, i-1, a.TotalWidth)
			}
		}
	}
}

// TestFrontStableUnderRelabeling: the cache key is the net's shape, not
// its name — a renamed but electrically identical net must be served the
// bit-identical front from cache.
func TestFrontStableUnderRelabeling(t *testing.T) {
	eng := mustEngine(t, Options{Workers: 1})
	net := corpus(t, 47, 1)[0]
	fr1 := eng.Front(Job{Net: net})
	if fr1.Err != nil {
		t.Fatal(fr1.Err)
	}
	renamed := *net
	renamed.Name = net.Name + "-relabeled"
	fr2 := eng.Front(Job{Net: &renamed})
	if fr2.Err != nil {
		t.Fatal(fr2.Err)
	}
	if !fr2.CacheHit {
		t.Fatal("relabeled net missed the shape-keyed cache")
	}
	if fr2.TMin != fr1.TMin || len(fr2.Points) != len(fr1.Points) {
		t.Fatalf("relabeled front differs: τmin %g vs %g, %d vs %d points",
			fr2.TMin, fr1.TMin, len(fr2.Points), len(fr1.Points))
	}
	for i := range fr1.Points {
		if fr1.Points[i] != fr2.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, fr1.Points[i], fr2.Points[i])
		}
	}
}

// TestFrontLeftmostIsMinDelay: within the front's own solution space the
// leftmost point IS the minimum-delay solution — dp.MinimumDelay over
// the same options must equal Points[0].Delay bit for bit, for every
// built-in node.
func TestFrontLeftmostIsMinDelay(t *testing.T) {
	for _, node := range []*tech.Technology{tech.T180(), tech.T130(), tech.T90(), tech.T65()} {
		eng, err := New(node, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := netgen.DefaultConfig(node)
		if err != nil {
			t.Fatal(err)
		}
		nets, err := netgen.Corpus(51, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nets {
			fr := eng.Front(Job{Net: n})
			if fr.Err != nil {
				t.Fatalf("%s/%s: %v", node.Name, n.Name, fr.Err)
			}
			ev, err := delay.NewEvaluator(n, node)
			if err != nil {
				t.Fatal(err)
			}
			dmin, err := dp.MinimumDelay(ev, eng.frontOpts)
			if err != nil {
				t.Fatal(err)
			}
			if fr.Points[0].Delay != dmin {
				t.Fatalf("%s/%s: leftmost front point %g != front-space MinDelay %g",
					node.Name, n.Name, fr.Points[0].Delay, dmin)
			}
		}
	}
}

// FuzzFrontLookup: an arbitrary budget either fails validation (NaN,
// ±Inf, non-positive) or gets a valid verdict — a feasible answer whose
// recomputed delay meets the budget, or infeasible only when the budget
// is genuinely below the front's achievable minimum.
func FuzzFrontLookup(f *testing.F) {
	node := tech.T180()
	cfg, err := netgen.DefaultConfig(node)
	if err != nil {
		f.Fatal(err)
	}
	nets, err := netgen.Corpus(53, 1, cfg)
	if err != nil {
		f.Fatal(err)
	}
	eng, err := New(node, Options{Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	fr := eng.Front(Job{Net: nets[0]})
	if fr.Err != nil {
		f.Fatal(fr.Err)
	}
	minDelay := fr.Points[0].Delay

	f.Add(math.NaN())
	f.Add(math.Inf(1))
	f.Add(math.Inf(-1))
	f.Add(-1.0)
	f.Add(0.0)
	f.Add(1e-15) // positive but far beyond τmin
	f.Add(minDelay)
	f.Add(2 * minDelay)
	f.Add(1e9)
	f.Fuzz(func(t *testing.T, budget float64) {
		r := eng.Solve(Job{Net: nets[0], Budgets: []float64{budget}})
		if math.IsNaN(budget) || math.IsInf(budget, 0) || budget <= 0 {
			if r.Err == nil {
				t.Fatalf("budget %g: want a validation error, got none", budget)
			}
			return
		}
		if r.Err != nil {
			t.Fatalf("budget %g: %v", budget, r.Err)
		}
		if len(r.Sweep) != 1 {
			t.Fatalf("budget %g: %d sweep answers, want 1", budget, len(r.Sweep))
		}
		sol := r.Sweep[0].Res.Solution
		if sol.Feasible {
			if sol.Delay > budget {
				t.Fatalf("budget %g: served delay %g exceeds it", budget, sol.Delay)
			}
		} else if budget >= minDelay {
			t.Fatalf("budget %g ≥ achievable minimum %g but reported infeasible", budget, minDelay)
		}
	})
}

// TestMultiBudgetSolveRatio is the PR's acceptance bound: a 10-budget
// sweep over a 1k-net corpus must cost no more than 1.1× the DP solves
// of the single-budget run, measured by the rip_dp_* work counters. The
// front-native engine makes the ratio exactly 1 — both runs pay τmin +
// one front sweep per distinct shape and answer everything else by
// lookup.
func TestMultiBudgetSolveRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-net corpus sweep")
	}
	distinct := corpus(t, 59, 100)
	single := mustEngine(t, Options{})
	sweep := mustEngine(t, Options{})

	singleJobs := make([]Job, 0, 1000)
	sweepJobs := make([]Job, 0, 1000)
	for i := 0; i < 1000; i++ {
		n := distinct[i%len(distinct)]
		singleJobs = append(singleJobs, Job{Net: n, TargetMult: 1.3})
		ladder := make([]float64, 10)
		for k := range ladder {
			ladder[k] = 0 // filled after τmin is known, below
		}
		sweepJobs = append(sweepJobs, Job{Net: n, Budgets: ladder})
	}
	for i, r := range single.Run(singleJobs) {
		if r.Err != nil {
			t.Fatalf("single net %d: %v", i, r.Err)
		}
		ladder := sweepJobs[i].Budgets
		for k := range ladder {
			ladder[k] = (1.3 + 0.17*float64(k)) * r.TMin
		}
	}
	for i, r := range sweep.Run(sweepJobs) {
		if r.Err != nil {
			t.Fatalf("sweep net %d: %v", i, r.Err)
		}
		if len(r.Sweep) != 10 {
			t.Fatalf("sweep net %d: %d answers", i, len(r.Sweep))
		}
		for k, ba := range r.Sweep {
			if !ba.Res.Solution.Feasible {
				t.Fatalf("sweep net %d budget %d (%g) infeasible", i, k, ba.Budget)
			}
		}
	}
	ss, ws := single.DPStats(), sweep.DPStats()
	if ss.Solves == 0 {
		t.Fatal("single-budget run recorded no DP solves")
	}
	ratio := float64(ws.Solves) / float64(ss.Solves)
	if ratio > 1.1 {
		t.Fatalf("10-budget sweep cost %d solves vs %d single-budget (ratio %.3f > 1.1)",
			ws.Solves, ss.Solves, ratio)
	}
	if lk := sweep.FrontStats().Lookups; lk != 10000 {
		t.Fatalf("sweep answered %d budget lookups, want 10000", lk)
	}
}
