module github.com/rip-eda/rip

go 1.23.0
