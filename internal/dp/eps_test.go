package dp

import (
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"github.com/rip-eda/rip/internal/delay"
	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/units"
	"github.com/rip-eda/rip/internal/wire"
)

// fpSlack absorbs accumulated float rounding when checking certified
// bounds that are proved in real arithmetic.
const fpSlack = 1e-9

// nodeEval builds the paperish evaluator on an arbitrary technology node.
func nodeEval(t *testing.T, tc *tech.Technology) *delay.Evaluator {
	t.Helper()
	ev, err := delay.NewEvaluator(&wire.Net{Name: "t", Line: paperishLine(t), DriverWidth: 120, ReceiverWidth: 60}, tc)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// sameValues compares the parts of two Solutions the ladder guarantees
// bit-identical: feasibility, delay and total width. (Work Stats differ
// by design — the coarse pass folds in — and assignments may differ only
// on exact value ties, where both are equally optimal.)
func sameValues(t *testing.T, name string, got, want Solution) {
	t.Helper()
	if got.Feasible != want.Feasible {
		t.Fatalf("%s: feasible %v, want %v", name, got.Feasible, want.Feasible)
	}
	if got.Delay != want.Delay {
		t.Fatalf("%s: delay %v, want %v", name, got.Delay, want.Delay)
	}
	if got.TotalWidth != want.TotalWidth {
		t.Fatalf("%s: total width %v, want %v", name, got.TotalWidth, want.TotalWidth)
	}
}

// TestLadderMatchesExactCorpus pins the ladder's contract on the
// deterministic corpus: identical feasibility, delay and width, with a
// still-valid assignment, in both the bounded and the front solver.
func TestLadderMatchesExactCorpus(t *testing.T) {
	s, sl := NewSolver(), NewSolver()
	for _, c := range corpusInstances(t) {
		lopts := c.opts
		lopts.Ladder = true
		want, wantErr := s.Solve(c.ev, c.opts)
		got, gotErr := sl.Solve(c.ev, lopts)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", c.name, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		sameValues(t, c.name, got, want)
		if got.Feasible {
			if err := c.ev.Validate(got.Assignment); err != nil {
				t.Fatalf("%s: ladder assignment invalid: %v", c.name, err)
			}
		}
		if got.Stats.EpsPruned != 0 {
			t.Fatalf("%s: exact ladder run reported %d ε-prunes", c.name, got.Stats.EpsPruned)
		}

		// Front mode: the ladder must reproduce the exact front's point
		// values exactly.
		wf, _, wantErr := s.SolveFront(c.ev, c.opts)
		gf, gst, gotErr := sl.SolveFront(c.ev, lopts)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s front: error mismatch: %v vs %v", c.name, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if len(gf) != len(wf) {
			t.Fatalf("%s front: %d points with ladder, %d without", c.name, len(gf), len(wf))
		}
		for i := range gf {
			if gf[i].Delay != wf[i].Delay || gf[i].TotalWidth != wf[i].TotalWidth {
				t.Fatalf("%s front point %d: (%v, %v) with ladder, (%v, %v) without",
					c.name, i, gf[i].Delay, gf[i].TotalWidth, wf[i].Delay, wf[i].TotalWidth)
			}
			if err := c.ev.Validate(gf[i].Assignment); err != nil {
				t.Fatalf("%s front point %d invalid: %v", c.name, i, err)
			}
		}
		if gst.EpsPruned != 0 {
			t.Fatalf("%s front: exact ladder run reported %d ε-prunes", c.name, gst.EpsPruned)
		}
	}
}

// TestLadderMatchesExactRandom is the randomized rendering of the ladder
// differential, including the tie-heavy libraries where representative
// selection is most fragile.
func TestLadderMatchesExactRandom(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 80
	}
	rng := rand.New(rand.NewSource(42))
	s, sl := NewSolver(), NewSolver()
	for trial := 0; trial < trials; trial++ {
		ev, opts := randomInstance(t, rng)
		lopts := opts
		lopts.Ladder = true
		want, wantErr := s.Solve(ev, opts)
		got, gotErr := sl.Solve(ev, lopts)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		sameValues(t, "trial", got, want)
		if got.Feasible {
			if err := ev.Validate(got.Assignment); err != nil {
				t.Fatalf("trial %d: ladder assignment invalid: %v", trial, err)
			}
		}
	}
}

// checkCertifiedFront asserts the ε-front's certificate against the exact
// front: for every exact point (D, W) the relaxed front must answer the
// budget D·fac with width ≤ W, where fac is the run's realized delay
// inflation (Stats.EpsFactor) — the tightened per-run certificate, not
// just the worst-case 1+eps.
func checkCertifiedFront(t *testing.T, name string, exact, relaxed Front, eps, fac float64) {
	t.Helper()
	for _, p := range exact {
		target := p.Delay * fac * (1 + fpSlack)
		i, ok := relaxed.At(target)
		if !ok {
			t.Fatalf("%s: ε-front answers no budget ≤ %v (exact point delay %v, eps %v, fac %v)",
				name, target, p.Delay, eps, fac)
		}
		if relaxed[i].TotalWidth > p.TotalWidth {
			t.Fatalf("%s: ε-front width %v at budget %v exceeds exact width %v (eps %v, fac %v)",
				name, relaxed[i].TotalWidth, target, p.TotalWidth, eps, fac)
		}
	}
}

// TestEpsFrontWithinCertifiedBound pins the ε-dominance certificate on
// every built-in technology node and a randomized net set: every relaxed
// front point is a real feasible assignment, and the relaxed curve is
// within the certified (1+ε) delay factor of the exact one — so a served
// budget's power never exceeds the exact optimum at the deflated budget.
func TestEpsFrontWithinCertifiedBound(t *testing.T) {
	s, se := NewSolver(), NewSolver()
	epsValues := []float64{0.005, 0.02, 0.1}
	check := func(name string, ev *delay.Evaluator, opts Options) {
		t.Helper()
		exact, _, err := s.SolveFront(ev, opts)
		if err != nil {
			t.Fatalf("%s: exact front: %v", name, err)
		}
		for _, eps := range epsValues {
			for _, ladder := range []bool{false, true} {
				eopts := opts
				eopts.Eps = eps
				eopts.Ladder = ladder
				relaxed, st, err := se.SolveFront(ev, eopts)
				if err != nil {
					t.Fatalf("%s eps=%v ladder=%v: %v", name, eps, ladder, err)
				}
				if len(relaxed) == 0 && len(exact) > 0 {
					t.Fatalf("%s eps=%v: relaxed front empty", name, eps)
				}
				if len(relaxed) > len(exact) {
					t.Fatalf("%s eps=%v: relaxed front larger than exact (%d > %d)",
						name, eps, len(relaxed), len(exact))
				}
				for i := range relaxed {
					if err := ev.Validate(relaxed[i].Assignment); err != nil {
						t.Fatalf("%s eps=%v point %d invalid: %v", name, eps, i, err)
					}
					if w := relaxed[i].Assignment.TotalWidth(); w != relaxed[i].TotalWidth {
						t.Fatalf("%s eps=%v point %d: stated width %v, assignment sums to %v",
							name, eps, i, relaxed[i].TotalWidth, w)
					}
				}
				fac := st.EpsFactor(eps)
				if fac < 1 || fac > 1+eps {
					t.Fatalf("%s eps=%v: EpsFactor %v outside [1, %v]", name, eps, fac, 1+eps)
				}
				if (st.EpsLevels == 0) != (st.EpsPruned == 0) {
					t.Fatalf("%s eps=%v: EpsLevels %d inconsistent with EpsPruned %d",
						name, eps, st.EpsLevels, st.EpsPruned)
				}
				if st.EpsLevels > st.Candidates || st.EpsLevels > st.EpsPruned {
					t.Fatalf("%s eps=%v: EpsLevels %d exceeds Candidates %d or EpsPruned %d",
						name, eps, st.EpsLevels, st.Candidates, st.EpsPruned)
				}
				checkCertifiedFront(t, name, exact, relaxed, eps, fac)
				if st.EpsPruned < 0 {
					t.Fatalf("%s: negative EpsPruned %d", name, st.EpsPruned)
				}
			}
		}
	}

	for _, tc := range []*tech.Technology{tech.T180(), tech.T130(), tech.T90(), tech.T65()} {
		ev := nodeEval(t, tc)
		check(tc.Name, ev, Options{Library: lib(t, 10, 10, 40), Pitch: 200 * units.Micron})
	}
	rng := rand.New(rand.NewSource(9))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		ev, opts := randomInstance(t, rng)
		opts.Objective = MinPower // front ignores it; keep instances width-aware
		check("random", ev, opts)
	}
}

// TestEpsActuallyPrunes guards against the relaxation silently degrading
// to exact: on the fine-granularity paperish net a 10% ε must kill a
// measurable number of exactly-Pareto-optimal options.
func TestEpsActuallyPrunes(t *testing.T) {
	ev := evalFor(t, paperishLine(t))
	opts := Options{Library: lib(t, 10, 10, 40), Pitch: 200 * units.Micron, Eps: 0.1}
	s := NewSolver()
	_, st, err := s.SolveFront(ev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.EpsPruned == 0 {
		t.Fatal("eps=0.1 front solve reported zero ε-prunes on the g10 paperish net")
	}
	exopts := opts
	exopts.Eps = 0
	_, est, err := s.SolveFront(ev, exopts)
	if err != nil {
		t.Fatal(err)
	}
	if !(st.Kept < est.Kept) {
		t.Fatalf("ε run kept %d options, exact kept %d — relaxation should shrink fronts", st.Kept, est.Kept)
	}
}

// TestEpsBoundedSolve pins the bounded-mode certificate: an ε solve at
// target T is always delay-feasible at T, succeeds whenever the exact
// solver succeeds at T/(1+ε), and never spends more width than the exact
// optimum at T/(1+ε).
func TestEpsBoundedSolve(t *testing.T) {
	ev := evalFor(t, paperishLine(t))
	l := lib(t, 10, 10, 40)
	tmin, err := MinimumDelay(ev, Options{Library: l, Pitch: 200 * units.Micron})
	if err != nil {
		t.Fatal(err)
	}
	s, se := NewSolver(), NewSolver()
	for _, eps := range []float64{0.005, 0.02, 0.1} {
		for _, mult := range []float64{1.02, 1.05, 1.2, 1.5, 2.5} {
			for _, ladder := range []bool{false, true} {
				target := mult * tmin
				eopts := Options{
					Library: l, Pitch: 200 * units.Micron,
					Objective: MinPower, Target: target,
					Eps: eps, Ladder: ladder,
				}
				relaxed, err := se.Solve(ev, eopts)
				if err != nil {
					t.Fatal(err)
				}
				deflated := target * (1 - fpSlack) / (1 + eps)
				exact, err := s.Solve(ev, Options{
					Library: l, Pitch: 200 * units.Micron,
					Objective: MinPower, Target: deflated,
				})
				if err != nil {
					t.Fatal(err)
				}
				name := "eps solve"
				if relaxed.Feasible {
					if relaxed.Delay > target {
						t.Fatalf("%s: delay %v exceeds target %v (eps %v): infeasibility introduced",
							name, relaxed.Delay, target, eps)
					}
					if err := ev.Validate(relaxed.Assignment); err != nil {
						t.Fatalf("%s: invalid assignment: %v", name, err)
					}
				}
				if exact.Feasible {
					if !relaxed.Feasible {
						t.Fatalf("%s: infeasible at %v though exact solves %v (eps %v, ladder %v)",
							name, target, deflated, eps, ladder)
					}
					if relaxed.TotalWidth > exact.TotalWidth {
						t.Fatalf("%s: width %v exceeds certified bound %v (eps %v, ladder %v)",
							name, relaxed.TotalWidth, exact.TotalWidth, eps, ladder)
					}
				}
			}
		}
	}
}

// TestEpsValidation pins the knob's range contract at the kernel boundary.
func TestEpsValidation(t *testing.T) {
	ev := evalFor(t, paperishLine(t))
	l := lib(t, 10, 40, 10)
	for _, eps := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.01, MaxEps * 1.01, 7} {
		opts := Options{Library: l, Pitch: 200 * units.Micron, Objective: MinPower, Target: 1e-9, Eps: eps}
		if _, err := Solve(ev, opts); err == nil {
			t.Errorf("Solve accepted eps=%v", eps)
		}
		if _, _, err := SolveFront(ev, opts); err == nil {
			t.Errorf("SolveFront accepted eps=%v", eps)
		}
	}
	// The boundary values themselves are legal.
	for _, eps := range []float64{0, MaxEps} {
		opts := Options{Library: l, Pitch: 200 * units.Micron, Objective: MinPower, Target: 1e-9, Eps: eps}
		if _, err := Solve(ev, opts); err != nil {
			t.Errorf("Solve rejected eps=%v: %v", eps, err)
		}
	}
}

// FuzzEpsSolve asserts error-or-bounded on arbitrary ε: invalid knob
// values must be rejected, valid ones must keep every certificate.
func FuzzEpsSolve(f *testing.F) {
	f.Add(0.02, 1.3, true)
	f.Add(0.0, 1.1, false)
	f.Add(-1.0, 1.5, true)
	f.Add(math.NaN(), 1.2, false)
	f.Add(math.Inf(1), 0.9, true)
	f.Add(0.5, 2.0, false)
	f.Add(1e300, 1.4, true)
	f.Fuzz(func(t *testing.T, eps, mult float64, ladder bool) {
		ev := evalFor(t, paperishLine(t))
		l := lib(t, 20, 60, 6)
		opts := Options{Library: l, Pitch: 400 * units.Micron}
		tmin, err := MinimumDelay(ev, opts)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(mult) || !(mult > 0.5) || mult > 8 {
			mult = 1.3
		}
		target := mult * tmin
		opts.Objective = MinPower
		opts.Target = target
		opts.Eps = eps
		opts.Ladder = ladder
		relaxed, err := Solve(ev, opts)
		if !validEps(eps) {
			if err == nil {
				t.Fatalf("invalid eps %v accepted", eps)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid eps %v rejected: %v", eps, err)
		}
		exopts := opts
		exopts.Eps = 0
		exopts.Ladder = false
		exopts.Target = target * (1 - fpSlack) / (1 + eps)
		exact, err := Solve(ev, exopts)
		if err != nil {
			t.Fatal(err)
		}
		if relaxed.Feasible {
			if relaxed.Delay > target {
				t.Fatalf("delay %v exceeds target %v at eps %v", relaxed.Delay, target, eps)
			}
			if err := ev.Validate(relaxed.Assignment); err != nil {
				t.Fatalf("invalid assignment at eps %v: %v", eps, err)
			}
		}
		if exact.Feasible {
			if !relaxed.Feasible {
				t.Fatalf("eps %v infeasible at %v though exact solves %v", eps, target, exopts.Target)
			}
			if relaxed.TotalWidth > exact.TotalWidth {
				t.Fatalf("eps %v width %v exceeds certified bound %v", eps, relaxed.TotalWidth, exact.TotalWidth)
			}
		}
	})
}

// TestParallelPruneStress hammers the intra-net parallel prune from many
// concurrent solvers (run with -race in CI): every parallel schedule must
// reproduce the serial solve bit-exactly — assignments and work stats
// included — and the worker-budget hooks must never deadlock.
func TestParallelPruneStress(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	type inst struct {
		ev   *delay.Evaluator
		opts Options
		want Solution
	}
	var instances []inst
	s := NewSolver()
	ev := evalFor(t, paperishLine(t))
	tmin, err := MinimumDelay(ev, Options{Library: lib(t, 10, 10, 40), Pitch: 200 * units.Micron})
	if err != nil {
		t.Fatal(err)
	}
	instances = append(instances,
		inst{ev: ev, opts: Options{Library: lib(t, 10, 10, 40), Pitch: 200 * units.Micron, Objective: MinPower, Target: 1.3 * tmin}},
		inst{ev: ev, opts: Options{Library: lib(t, 10, 10, 40), Pitch: 200 * units.Micron, Objective: MinDelay}},
		inst{ev: ev, opts: Options{Library: lib(t, 10, 10, 40), Pitch: 200 * units.Micron, Objective: MinPower, Target: 1.2 * tmin, Ladder: true, Eps: DefaultEps}},
	)
	for trial := 0; trial < 12; trial++ {
		rev, ropts := randomInstance(t, rng)
		instances = append(instances, inst{ev: rev, opts: ropts})
	}
	for i := range instances {
		want, err := s.Solve(instances[i].ev, instances[i].opts)
		if err != nil {
			t.Fatal(err)
		}
		instances[i].want = want
	}

	// A bounded shared worker budget, the shape the engine passes in.
	slots := make(chan struct{}, 3)
	acquire := func() bool {
		select {
		case slots <- struct{}{}:
			return true
		default:
			return false
		}
	}
	release := func() { <-slots }

	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ps := NewSolver()
			var sol Solution
			for round := 0; round < 3; round++ {
				for i := range instances {
					popts := instances[i].opts
					popts.Parallel = 8
					popts.ParallelThreshold = 1
					if g%2 == 0 {
						popts.AcquireWorker = acquire
						popts.ReleaseWorker = release
					}
					if err := ps.SolveInto(&sol, instances[i].ev, popts); err != nil {
						t.Errorf("goroutine %d inst %d: %v", g, i, err)
						return
					}
					want := instances[i].want
					if sol.Feasible != want.Feasible || sol.Delay != want.Delay ||
						sol.TotalWidth != want.TotalWidth || sol.Stats != want.Stats {
						t.Errorf("goroutine %d inst %d: parallel solve diverged: got {%v %v %v %+v}, want {%v %v %v %+v}",
							g, i, sol.Feasible, sol.Delay, sol.TotalWidth, sol.Stats,
							want.Feasible, want.Delay, want.TotalWidth, want.Stats)
						return
					}
					if !slices.Equal(sol.Assignment.Positions, want.Assignment.Positions) ||
						!slices.Equal(sol.Assignment.Widths, want.Assignment.Widths) {
						t.Errorf("goroutine %d inst %d: parallel assignment diverged", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if len(slots) != 0 {
		t.Fatalf("%d worker slots leaked", len(slots))
	}
}
