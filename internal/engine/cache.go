package engine

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"github.com/rip-eda/rip/internal/core"
)

// cached is one memoized solution. It stores only what is needed to
// reconstruct and re-verify an assignment on a signature-equivalent net;
// the full pipeline report is not kept (it would pin the coarse/fine DP
// working sets of millions of nets in memory).
type cached struct {
	positions  []float64
	widths     []float64
	totalWidth float64
	// tmin is the signature's τmin; non-zero only for relative-target
	// entries, whose key embeds the target multiple. For tree entries it
	// is the minimum achievable worst-sink arrival.
	tmin   float64
	picked core.Phase

	// Tree entries (key prefix "T") reuse widths for the buffer sizes;
	// treeIDs carries the buffered node IDs (parallel to widths), slack
	// the solution's worst slack and treePicked the winning phase. Line
	// and tree keys are disjoint, so a signature never decodes as the
	// wrong kind.
	tree       bool
	treeIDs    []int32
	slack      float64
	treePicked string
}

// cacheShard is one independently locked slice of the cache: an LRU list
// (front = most recently used) plus the key index.
type cacheShard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	index    map[string]*list.Element
}

type cacheItem struct {
	key string
	val cached
}

// solutionCache is a bounded, sharded LRU keyed by canonical net
// signatures. Sharding keeps lock contention off the hot path when many
// workers look up concurrently; each shard holds capacity/shards entries.
type solutionCache struct {
	shards    []*cacheShard
	evictions atomic.Uint64
}

func newSolutionCache(capacity, shards int) *solutionCache {
	if shards < 1 {
		shards = 1
	}
	if capacity < shards {
		capacity = shards
	}
	c := &solutionCache{shards: make([]*cacheShard, shards)}
	per := (capacity + shards - 1) / shards
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			capacity: per,
			ll:       list.New(),
			index:    make(map[string]*list.Element, per),
		}
	}
	return c
}

func (c *solutionCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// get returns the entry for key and marks it most recently used.
func (c *solutionCache) get(key string) (cached, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[key]
	if !ok {
		return cached{}, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put inserts or refreshes key, evicting the shard's LRU entry when full.
func (c *solutionCache) put(key string, val cached) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		el.Value.(*cacheItem).val = val
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.capacity {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.index, oldest.Value.(*cacheItem).key)
			c.evictions.Add(1)
		}
	}
	s.index[key] = s.ll.PushFront(&cacheItem{key: key, val: val})
}

// len returns the total number of cached entries.
func (c *solutionCache) len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
