// Command netgen emits a corpus of random paper-style nets for use with
// ripcli, ripd or external tools: two-pin lines (the distribution of the
// paper's §6) by default, routing trees with -trees. The default output
// is a JSON array; -jsonl instead emits one request wrapper per line in
// the shared wire format (internal/api), each line carrying the node's
// canonical "tech" name — so corpora generated at different nodes
// concatenate into one mixed-technology stream that ripcli -batch and
// ripd /v1/batch replay identically.
//
// With -bus the corpus is track groups instead of single nets: -count
// bus groups of 2–6 parallel tracks each, one api.BusRequest wrapper
// per line — the input shape of ripcli -bus and ripd's POST /v1/bus.
//
// Usage:
//
//	netgen -seed 2005 -count 20 > nets.json
//	netgen -seed 7 -count 5 -o corpus.json -tech 90nm
//	netgen -trees -count 100 | jq -c '.[]' > trees.jsonl   # ripcli -tree -batch input
//	netgen -jsonl -tech 180nm -count 50 -target 1.3 >  mixed.jsonl
//	netgen -jsonl -tech 65nm  -count 50 -target 1.3 >> mixed.jsonl
//	netgen -bus -count 8 -tech 90nm -target 1.2 > bus.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	rip "github.com/rip-eda/rip"
	"github.com/rip-eda/rip/internal/api"
	"github.com/rip-eda/rip/internal/wire"
)

func main() {
	var (
		seed     = flag.Int64("seed", 2005, "generator seed")
		count    = flag.Int("count", 20, "number of nets")
		trees    = flag.Bool("trees", false, "emit routing trees instead of two-pin lines")
		bus      = flag.Bool("bus", false, "emit bus track groups (one api.BusRequest JSONL line per group) instead of single nets")
		jsonl    = flag.Bool("jsonl", false, "emit JSONL request wrappers with per-line tech attribution instead of a JSON array")
		relT     = flag.Float64("target", 0, "with -jsonl: per-line target_mult (0 = omit, the transport default applies)")
		absT     = flag.Float64("target-ns", 0, "with -jsonl: per-line target_ns (0 = omit)")
		sweepT   = flag.String("targets-ns", "", "with -jsonl: per-line targets_ns multi-budget list, comma-separated ns values (empty = omit)")
		out      = flag.String("o", "", "output file (default stdout)")
		techName = flag.String("tech", "180nm", "built-in technology node (layer RC source and JSONL tech attribution)")
	)
	flag.Parse()

	reg := rip.BuiltinTechRegistry()
	tech, canonical, err := reg.Get(*techName)
	if err != nil {
		fatal(err)
	}
	if *relT > 0 && *absT > 0 {
		fatal(fmt.Errorf("give either -target or -target-ns, not both"))
	}
	targets, err := parseTargets(*sweepT)
	if err != nil {
		fatal(err)
	}
	if len(targets) > 0 && (*relT > 0 || *absT > 0) {
		fatal(fmt.Errorf("give -targets-ns or a single -target/-target-ns, not both"))
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *bus {
		if *trees {
			fatal(fmt.Errorf("-bus generates line-net track groups; it cannot combine with -trees"))
		}
		if len(targets) > 0 {
			fatal(fmt.Errorf("-targets-ns is not supported with -bus (a bus solves one budget)"))
		}
		if err := emitBusJSONL(w, tech, canonical, *seed, *count, *relT, *absT); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Fprintf(os.Stderr, "wrote %d bus groups to %s\n", *count, *out)
		}
		return
	}
	if *jsonl {
		if err := emitJSONL(w, tech, canonical, *seed, *count, *trees, *relT, *absT, targets); err != nil {
			fatal(err)
		}
		note(*out, *count)
		return
	}
	if *trees {
		nets, err := rip.GenerateTreeNets(tech, *seed, *count)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(nets); err != nil {
			fatal(err)
		}
		note(*out, len(nets))
		return
	}
	nets, err := rip.GenerateNets(tech, *seed, *count)
	if err != nil {
		fatal(err)
	}
	if err := wire.WriteNets(w, nets); err != nil {
		fatal(err)
	}
	note(*out, len(nets))
}

// emitJSONL writes one api.Request wrapper per net, attributed to the
// node's canonical name — the replayable mixed-corpus building block.
func emitJSONL(w io.Writer, tech *rip.Technology, canonical string, seed int64, count int, trees bool, relT, absT float64, targets []float64) error {
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	write := func(req api.Request) error {
		req.Tech = canonical
		req.TargetMult = relT
		req.TargetNS = absT
		req.TargetsNS = targets
		return enc.Encode(req)
	}
	if trees {
		nets, err := rip.GenerateTreeNets(tech, seed, count)
		if err != nil {
			return err
		}
		for _, n := range nets {
			if err := write(api.Request{Tree: n}); err != nil {
				return err
			}
		}
		return nil
	}
	nets, err := rip.GenerateNets(tech, seed, count)
	if err != nil {
		return err
	}
	for _, n := range nets {
		if err := write(api.Request{Net: n}); err != nil {
			return err
		}
	}
	return nil
}

// emitBusJSONL writes one api.BusRequest wrapper per generated track
// group, attributed to the node's canonical name — the replayable input
// of ripcli -bus and POST /v1/bus.
func emitBusJSONL(w io.Writer, tech *rip.Technology, canonical string, seed int64, count int, relT, absT float64) error {
	groups, err := rip.GenerateBusGroups(tech, seed, count)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	for _, g := range groups {
		req := api.BusRequest{Tracks: g, Tech: canonical, TargetMult: relT, TargetNS: absT}
		if err := enc.Encode(req); err != nil {
			return err
		}
	}
	return nil
}

// parseTargets parses the -targets-ns list: comma-separated positive
// nanosecond budgets, kept in ns (the wire unit of targets_ns).
func parseTargets(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("-targets-ns entry %q: %v", tok, err)
		}
		if !(v > 0) {
			return nil, fmt.Errorf("-targets-ns entry %g is not a positive time", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func note(out string, n int) {
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d nets to %s\n", n, out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netgen:", err)
	os.Exit(1)
}
