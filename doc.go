// Package rip is a Go reproduction of "RIP: An Efficient Hybrid Repeater
// Insertion Scheme for Low Power" (Liu, Peng, Papaefthymiou — DATE 2005).
//
// Given a routed two-pin global interconnect — segments with per-unit RC,
// forbidden zones under macro blocks, fixed driver and receiver — and a
// timing budget, RIP computes the number, widths and locations of repeaters
// that meet the budget with minimum repeater power (equivalently, minimum
// total repeater width). The hybrid pipeline combines:
//
//  1. a coarse van Ginneken / Lillis dynamic program,
//  2. REFINE — an analytical Lagrangian solver that sizes repeaters
//     continuously and moves them along the line using one-sided Elmore
//     delay derivatives, and
//  3. a final dynamic program over a concise library and candidate set
//     synthesized from the analytical solution.
//
// # Quick start
//
//	t := rip.T180()
//	line, _ := rip.NewLine([]rip.Segment{
//		{Length: 5e-3, ROhmPerM: 8e4, CFPerM: 2.3e-10, Layer: "metal4"},
//	}, nil)
//	net := &rip.Net{Name: "n", Line: line, DriverWidth: 240, ReceiverWidth: 80}
//	tmin, _ := rip.MinimumDelay(net, t)
//	res, _ := rip.Insert(net, t, 1.3*tmin, rip.DefaultConfig())
//	fmt.Println(res.Solution.Assignment)
//
// # Batch optimization
//
// For chip-scale workloads, OptimizeBatch and NewEngine fan nets out
// over a worker pool with a sharded LRU solution cache keyed by
// canonical net signature, so repeated-geometry nets are solved once:
//
//	results, _ := rip.OptimizeBatch(nets, t, 1.3, rip.EngineOptions{})
//
// See ARCHITECTURE.md for the engine's design and cmd/ripcli's -batch
// flag for the streaming JSONL form.
//
// # Tree workloads
//
// Routing trees (the paper's §7 extension) are a first-class workload:
// TreeNet wraps an RC tree with a driver width, InsertTreeNet runs the
// hybrid tree pipeline, TreeMinimumDelay computes the τmin analogue,
// and BatchJob.TreeNet sends trees through the same engine, cache and
// service endpoints as lines — batches may mix both kinds:
//
//	trees, _ := rip.GenerateTreeNets(t, 2005, 1)
//	tmin, _ := rip.TreeMinimumDelay(trees[0], t)
//	res, _ := rip.InsertTreeNet(trees[0], t, 1.3*tmin)
//
// # Multi-technology serving
//
// The process node is a per-request input: a TechRegistry names the
// served nodes (built-ins plus JSON-loaded custom nodes, frozen after
// assembly), and a MultiEngine routes each BatchJob by its Tech name to
// a per-node engine — isolated per-node solution caches over one shared
// worker budget:
//
//	eng, _ := rip.NewMultiEngine(rip.BuiltinTechRegistry(), "180nm", rip.EngineOptions{})
//	results := eng.Run([]rip.BatchJob{
//		{Net: net, TargetMult: 1.3},               // default node
//		{Net: net, Tech: "65nm", TargetMult: 1.3}, // same net, smaller node
//	})
//
// The subpackages under internal implement the substrates (wire model,
// Elmore evaluator, DP baseline, analytical solver, batch engine,
// experiment harness); this package re-exports the stable surface. The
// cmd/ binaries reproduce every table and figure of the paper's
// evaluation; see EXPERIMENTS.md.
package rip
