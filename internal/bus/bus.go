// Package bus is the decision algebra of joint neighbor-aware bus
// optimization: given a group of parallel tracks and, per track, the
// minimum repeater width the per-net DP needs at every effective Miller
// factor the group can produce, it co-decides one countermeasure per
// track — plain, staggered or shielded — so the scenario each track is
// priced under is the one its actual neighbors produce.
//
// The neighbor model (LiuPP05's hybrid-scheme idea lifted from intervals
// to tracks):
//
//   - A plain neighbor (or the bus edge, where the wiring beyond is
//     unknown) switches adversarially: that side is priced at MillerMax.
//   - A shielded track routes a grounded shield that its two victims
//     share: each adjacent track sees a quiet side (factor 1), and the
//     shield's area is paid once, by the shielded track.
//   - Staggering pays off only when it alternates consistently: staggered
//     tracks take a half-stage offset by track parity, so any two
//     ADJACENT staggered tracks are offset from each other and that side
//     is priced at MillerMax/2. A staggered track facing a plain
//     neighbor is conservatively priced at MillerMax on that side (only
//     within a staggered run is the offset guaranteed).
//   - A shielded track itself is priced at factor 0 (the shield kills its
//     coupling, matching the per-interval shielded scheme) plus its
//     shield area.
//
// A track's effective factor is the mean of its two side factors — the
// coupling density is the total over both sides, and the delay model is
// linear in the factor. That yields at most seven distinct factors per
// technology (MFValues), so the whole group reduces to a small outcome
// table: engine solves one front per (track shape, factor) and this
// package runs pure arithmetic over the table — a chain DP that is exact
// (each track's cost depends only on its own and its two neighbors'
// decisions), and an iterated best-response loop that starts from the
// independent all-plain assignment and therefore never ends worse than
// it.
//
// The package deliberately imports nothing from the engine: it sees only
// width numbers, so the engine layer owns all solving and caching.
package bus

import "math"

// Decision is one track's co-decided countermeasure. The values match
// the delay package's per-interval scheme constants.
type Decision uint8

const (
	// Plain deploys no countermeasure.
	Plain Decision = iota
	// Staggered offsets the track's repeaters by half a stage, phased by
	// track parity so adjacent staggered tracks alternate consistently.
	Staggered
	// Shielded routes a grounded track alongside, killing the track's own
	// coupling and quieting one side of each adjacent victim, at an area
	// price of Table.ShieldCost.
	Shielded
)

// String returns the wire name of the decision.
func (d Decision) String() string {
	switch d {
	case Staggered:
		return "staggered"
	case Shielded:
		return "shielded"
	}
	return "plain"
}

// Table is one track's outcome table: the minimum total repeater width
// the track's budget admits at every effective Miller factor the group
// can produce (math.Inf(1) marks an infeasible factor), plus the area
// price of shielding the track. The engine fills it from cached front
// solves; this package only reads it.
type Table struct {
	// Width maps an effective Miller factor (a MFValues entry) to the
	// track's minimum total repeater width at its budget.
	Width map[float64]float64
	// ShieldCost is the track's shield area in width units
	// (ShieldUPerM · length), paid when the track's decision is Shielded.
	ShieldCost float64
}

// Cost orders assignments: fewer infeasible tracks always wins, then
// lower total width. Representing infeasibility as a count instead of an
// infinite width keeps "make one more track feasible" strictly better
// than any width trade.
type Cost struct {
	// Infeasible counts tracks whose budget the assignment cannot meet.
	Infeasible int
	// Width is the summed width objective of the feasible tracks,
	// including shield areas.
	Width float64
}

// Less reports whether c is strictly better than o.
func (c Cost) Less(o Cost) bool {
	if c.Infeasible != o.Infeasible {
		return c.Infeasible < o.Infeasible
	}
	return c.Width < o.Width
}

// add folds one track's width (possibly +Inf) into the cost.
func (c Cost) add(w float64) Cost {
	if math.IsInf(w, 1) {
		c.Infeasible++
		return c
	}
	c.Width += w
	return c
}

// MFValues lists, sorted ascending, every effective Miller factor a
// track of a bus can be priced under when the plain-side factor is mm
// (the technology's MillerMax): 0 for shielded tracks, and the mean of
// two side factors drawn from {1, mm/2, mm} otherwise.
func MFValues(mm float64) []float64 {
	sides := []float64{1, mm / 2, mm}
	seen := map[float64]bool{0: true}
	out := []float64{0}
	for i, a := range sides {
		for _, b := range sides[i:] {
			f := (a + b) / 2
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 1 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// MFFor returns the effective Miller factor of a track deciding cur
// between neighbors deciding left and right. Bus edges are priced as
// Plain neighbors — pass Plain for a missing neighbor.
func MFFor(mm float64, cur, left, right Decision) float64 {
	if cur == Shielded {
		return 0
	}
	side := func(n Decision) float64 {
		switch {
		case n == Shielded:
			return 1
		case n == Staggered && cur == Staggered:
			return mm / 2
		}
		return mm
	}
	return (side(left) + side(right)) / 2
}

// trackWidth is one track's width objective under the decision triple:
// its table width at the effective factor, plus the shield area when the
// track itself shields.
func trackWidth(t Table, mm float64, left, cur, right Decision) float64 {
	w := t.Width[MFFor(mm, cur, left, right)]
	if cur == Shielded {
		w += t.ShieldCost
	}
	return w
}

// Total prices a whole assignment. len(d) must equal len(tables).
func Total(mm float64, tables []Table, d []Decision) Cost {
	var c Cost
	for i, t := range tables {
		c = c.add(trackWidth(t, mm, neighbor(d, i-1), d[i], neighbor(d, i+1)))
	}
	return c
}

// neighbor reads a decision with bus edges rendered as Plain.
func neighbor(d []Decision, i int) Decision {
	if i < 0 || i >= len(d) {
		return Plain
	}
	return d[i]
}

// decisions is the candidate order everywhere — ties prefer the cheaper
// discipline (plain needs no coordination, staggering no area, shielding
// both).
var decisions = [...]Decision{Plain, Staggered, Shielded}

// SolveExact minimizes Total over all 3^n assignments by a chain
// dynamic program over (previous, current) decision pairs — exact for
// any group size because a track's cost depends only on its own and its
// two neighbors' decisions. Ties resolve to the lexicographically first
// assignment in Plain < Staggered < Shielded order, making the result
// deterministic and the all-plain assignment the winner whenever
// coordination cannot strictly improve on it.
func SolveExact(mm float64, tables []Table) ([]Decision, Cost) {
	n := len(tables)
	if n == 0 {
		return nil, Cost{}
	}
	// cur[b][c]: best cost of tracks 0..i given d[i]=b, d[i+1]=c (the
	// lookahead the next track's cost needs; c is pinned to the Plain
	// edge at i = n-1). parents[i][b][c] backtracks d[i-1].
	var cur [3][3]Cost
	var alive [3][3]bool
	for _, b := range decisions {
		for _, c := range decisions {
			cur[b][c] = Cost{}.add(trackWidth(tables[0], mm, Plain, b, c))
			alive[b][c] = true
		}
	}
	parents := make([][3][3]Decision, n)
	for i := 1; i < n; i++ {
		var nxt [3][3]Cost
		var nxtAlive [3][3]bool
		for _, b := range decisions { // d[i]
			for _, c := range decisions { // d[i+1] (Plain edge at the last track)
				if i == n-1 && c != Plain {
					continue
				}
				for _, a := range decisions { // d[i-1]
					if !alive[a][b] {
						continue
					}
					cand := cur[a][b].add(trackWidth(tables[i], mm, a, b, c))
					if !nxtAlive[b][c] || cand.Less(nxt[b][c]) {
						nxt[b][c] = cand
						nxtAlive[b][c] = true
						parents[i][b][c] = a
					}
				}
			}
		}
		cur, alive = nxt, nxtAlive
	}
	bestB, bestC, have := Plain, Cost{}, false
	for _, b := range decisions {
		if alive[b][Plain] && (!have || cur[b][Plain].Less(bestC)) {
			bestB, bestC, have = b, cur[b][Plain], true
		}
	}
	out := make([]Decision, n)
	out[n-1] = bestB
	c := Plain
	for i := n - 1; i >= 1; i-- {
		out[i-1] = parents[i][out[i]][c]
		c = out[i]
	}
	return out, bestC
}

// SolveIterate runs iterated best-response: starting from the
// independent all-plain assignment (and, as a second start, all
// staggered), each sweep re-decides every track against the scenario its
// current neighbors produce, accepting a change only when it strictly
// lowers the group total. It stops at a fixed point (a full sweep with
// no change) or after maxSweeps sweeps (≤ 0 means the default cap of
// 32). Because all-plain is a start and every accepted move strictly
// improves, the result is never worse than the independent pessimistic
// assignment. Returns the assignment, its cost, the sweeps the winning
// start used, and whether it reached a fixed point.
func SolveIterate(mm float64, tables []Table, maxSweeps int) ([]Decision, Cost, int, bool) {
	if maxSweeps <= 0 {
		maxSweeps = 32
	}
	n := len(tables)
	if n == 0 {
		return nil, Cost{}, 0, true
	}
	run := func(start Decision) ([]Decision, Cost, int, bool) {
		d := make([]Decision, n)
		for i := range d {
			d[i] = start
		}
		sweeps, converged := 0, false
		for sweeps < maxSweeps {
			sweeps++
			changed := false
			for i := 0; i < n; i++ {
				l, r := neighbor(d, i-1), neighbor(d, i+1)
				// Only the terms of tracks i-1, i, i+1 depend on d[i]:
				// compare the local triple under each candidate.
				local := func(di Decision) Cost {
					var c Cost
					if i > 0 {
						c = c.add(trackWidth(tables[i-1], mm, neighbor(d, i-2), l, di))
					}
					c = c.add(trackWidth(tables[i], mm, l, di, r))
					if i < n-1 {
						c = c.add(trackWidth(tables[i+1], mm, di, r, neighbor(d, i+2)))
					}
					return c
				}
				bestD, bestC := d[i], local(d[i])
				for _, cand := range decisions {
					if cand == d[i] {
						continue
					}
					if c := local(cand); c.Less(bestC) {
						bestD, bestC = cand, c
					}
				}
				if bestD != d[i] {
					d[i] = bestD
					changed = true
				}
			}
			if !changed {
				converged = true
				break
			}
		}
		return d, Total(mm, tables, d), sweeps, converged
	}
	d, c, sweeps, conv := run(Plain)
	if d2, c2, s2, conv2 := run(Staggered); c2.Less(c) {
		d, c, sweeps, conv = d2, c2, s2, conv2
	}
	return d, c, sweeps, conv
}
