// Package netgen generates the random workloads the benchmarks, fuzz
// harnesses and examples run on, for both net kinds the engine serves.
//
// Two-pin lines follow the RIP paper's experimental setup (§6) exactly:
//
//   - each net has 4–10 segments,
//   - each segment is 1000–2500 µm long,
//   - segments are routed on metal4 and metal5 only,
//   - one forbidden zone per net, 20–40 % of the total length, its
//     location uniformly distributed along the interconnect.
//
// Routing trees (tree.go) are random binary topologies on metal4 — the
// distribution of tree.DefaultGenConfig — packaged as workload-ready
// tree.Net instances with driver widths and embedded sink deadlines.
//
// Generation is fully deterministic given a seed, which is what lets the
// experiment harness reproduce the paper's 20-net corpus bit-for-bit
// across runs, and what makes cache-hit patterns in the batch
// benchmarks reproducible.
package netgen

import (
	"fmt"
	"math/rand"

	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/units"
	"github.com/rip-eda/rip/internal/wire"
)

// Config describes the random net distribution. DefaultConfig matches §6.
type Config struct {
	// MinSegments and MaxSegments bound the per-net segment count.
	MinSegments, MaxSegments int
	// MinSegLen and MaxSegLen bound each segment's length in meters.
	MinSegLen, MaxSegLen float64
	// Layers are the candidate routing layers (chosen uniformly per
	// segment).
	Layers []tech.Layer
	// ZoneFractionMin and ZoneFractionMax bound the forbidden-zone length
	// as a fraction of the net length. Zero disables zones.
	ZoneFractionMin, ZoneFractionMax float64
	// DriverWidth and ReceiverWidth are the fixed terminal sizes in u.
	DriverWidth, ReceiverWidth float64
}

// DefaultConfig returns the paper's §6 distribution over the given
// technology's metal4/metal5 layers.
func DefaultConfig(t *tech.Technology) (Config, error) {
	m4, err := t.Layer("metal4")
	if err != nil {
		return Config{}, err
	}
	m5, err := t.Layer("metal5")
	if err != nil {
		return Config{}, err
	}
	return Config{
		MinSegments:     4,
		MaxSegments:     10,
		MinSegLen:       1000 * units.Micron,
		MaxSegLen:       2500 * units.Micron,
		Layers:          []tech.Layer{m4, m5},
		ZoneFractionMin: 0.20,
		ZoneFractionMax: 0.40,
		DriverWidth:     240,
		ReceiverWidth:   80,
	}, nil
}

func (c Config) validate() error {
	switch {
	case c.MinSegments < 1 || c.MaxSegments < c.MinSegments:
		return fmt.Errorf("netgen: bad segment count range [%d, %d]", c.MinSegments, c.MaxSegments)
	case !(c.MinSegLen > 0) || c.MaxSegLen < c.MinSegLen:
		return fmt.Errorf("netgen: bad segment length range [%g, %g]", c.MinSegLen, c.MaxSegLen)
	case len(c.Layers) == 0:
		return fmt.Errorf("netgen: no layers")
	case c.ZoneFractionMin < 0 || c.ZoneFractionMax > 0.9 || c.ZoneFractionMax < c.ZoneFractionMin:
		return fmt.Errorf("netgen: bad zone fraction range [%g, %g]", c.ZoneFractionMin, c.ZoneFractionMax)
	case !(c.DriverWidth > 0) || !(c.ReceiverWidth > 0):
		return fmt.Errorf("netgen: terminal widths must be positive")
	}
	return nil
}

// Generate produces one random net named name from the distribution.
func Generate(rng *rand.Rand, cfg Config, name string) (*wire.Net, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := cfg.MinSegments + rng.Intn(cfg.MaxSegments-cfg.MinSegments+1)
	segs := make([]wire.Segment, m)
	total := 0.0
	for i := range segs {
		l := cfg.Layers[rng.Intn(len(cfg.Layers))]
		length := cfg.MinSegLen + rng.Float64()*(cfg.MaxSegLen-cfg.MinSegLen)
		segs[i] = wire.Segment{Length: length, ROhmPerM: l.ROhmPerM, CFPerM: l.CFPerM, CcFPerM: l.CcFPerM, Layer: l.Name}
		total += length
	}
	var zones []wire.Zone
	if cfg.ZoneFractionMax > 0 {
		frac := cfg.ZoneFractionMin + rng.Float64()*(cfg.ZoneFractionMax-cfg.ZoneFractionMin)
		zlen := frac * total
		zstart := rng.Float64() * (total - zlen)
		zones = []wire.Zone{{Start: zstart, End: zstart + zlen}}
	}
	line, err := wire.New(segs, zones)
	if err != nil {
		return nil, fmt.Errorf("netgen: %w", err)
	}
	net := &wire.Net{
		Name:          name,
		Line:          line,
		DriverWidth:   cfg.DriverWidth,
		ReceiverWidth: cfg.ReceiverWidth,
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// Corpus generates count nets deterministically from the seed.
func Corpus(seed int64, count int, cfg Config) ([]*wire.Net, error) {
	if count <= 0 {
		return nil, fmt.Errorf("netgen: count must be positive, got %d", count)
	}
	rng := rand.New(rand.NewSource(seed))
	nets := make([]*wire.Net, count)
	for i := range nets {
		n, err := Generate(rng, cfg, fmt.Sprintf("net%02d", i+1))
		if err != nil {
			return nil, err
		}
		nets[i] = n
	}
	return nets, nil
}

// BusGroup generates one bus of k parallel tracks named
// "<name>.t0" … "<name>.t<k-1>". All tracks of a group share one routed
// geometry — the members of a real bus run the same length over the
// same layers — so a group exercises the engine's per-(shape, factor)
// front sharing: however wide the bus, each factor is solved once.
func BusGroup(rng *rand.Rand, cfg Config, name string, k int) ([]*wire.Net, error) {
	if k < 2 {
		return nil, fmt.Errorf("netgen: a bus group needs at least 2 tracks, got %d", k)
	}
	base, err := Generate(rng, cfg, name+".t0")
	if err != nil {
		return nil, err
	}
	tracks := make([]*wire.Net, k)
	tracks[0] = base
	for i := 1; i < k; i++ {
		t := *base // the Line is immutable and safely shared
		t.Name = fmt.Sprintf("%s.t%d", name, i)
		tracks[i] = &t
	}
	return tracks, nil
}

// BusCorpus generates count bus groups deterministically from the seed,
// 2–6 tracks each, named "bus01" onward.
func BusCorpus(seed int64, count int, cfg Config) ([][]*wire.Net, error) {
	if count <= 0 {
		return nil, fmt.Errorf("netgen: count must be positive, got %d", count)
	}
	rng := rand.New(rand.NewSource(seed))
	groups := make([][]*wire.Net, count)
	for i := range groups {
		k := 2 + rng.Intn(5)
		g, err := BusGroup(rng, cfg, fmt.Sprintf("bus%02d", i+1), k)
		if err != nil {
			return nil, err
		}
		groups[i] = g
	}
	return groups, nil
}

// Paper20 returns the 20-net corpus used throughout the experiments, on
// the given technology, for the given seed.
func Paper20(t *tech.Technology, seed int64) ([]*wire.Net, error) {
	cfg, err := DefaultConfig(t)
	if err != nil {
		return nil, err
	}
	return Corpus(seed, 20, cfg)
}
