package tech

import (
	"bytes"
	"math"
	"testing"
)

// FuzzCouplingTechJSON is FuzzTechnologyJSON's crosstalk companion: a
// node that loads must carry a physically meaningful coupling model.
// NaN/Inf/negative coupling densities, Miller factors outside [0,2],
// MillerMin above MillerMax, bad shield costs and layers that dropped
// their coupling fields entirely must either surface as load errors or
// land inside the validated envelope — never as a half-coupled node
// whose cache signature or DP tables would silently disagree with the
// uncoupled model. The seed corpus is the four built-ins (all coupled)
// plus one mutant per coupling failure class.
func FuzzCouplingTechJSON(f *testing.F) {
	for _, name := range BuiltinNames() {
		t, err := Builtin(name)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := t.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	const base = `"rs_ohm":2e4,"co_f":1e-15,"cp_f":1e-15,"vdd_v":1,"freq_hz":1e9,"activity":0.1,"leak_w_per_unit":0`
	for _, seed := range []string{
		// Coupling density mutants: NaN-shaped, Inf-shaped, negative.
		`{"name":"ccnan",` + base + `,"miller_max":2,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":NaN}]}`,
		`{"name":"ccinf",` + base + `,"miller_max":2,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e999}]}`,
		`{"name":"ccneg",` + base + `,"miller_max":2,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":-1e-10}]}`,
		// Miller factor mutants: above the physical ceiling, negative,
		// inverted min/max, non-finite.
		`{"name":"mfhigh",` + base + `,"miller_max":2.5,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
		`{"name":"mfneg",` + base + `,"miller_max":-1,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
		`{"name":"mfinv",` + base + `,"miller_min":1.5,"miller_max":1,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
		`{"name":"mfnan",` + base + `,"miller_max":NaN,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
		// Shield cost mutants.
		`{"name":"shneg",` + base + `,"miller_max":2,"shield_u_per_m":-1,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
		`{"name":"shinf",` + base + `,"miller_max":2,"shield_u_per_m":1e999,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
		// Coupled node whose layer list went missing or lost its coupling
		// field: the former must error, the latter must stay valid (a
		// coupled node may have uncoupled layers — cc defaults to 0).
		`{"name":"nolayers",` + base + `,"miller_max":2,"layers":[]}`,
		`{"name":"nocc",` + base + `,"miller_max":2,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10}]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		node, err := Read(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if verr := node.Validate(); verr != nil {
			t.Fatalf("Read accepted a node that fails Validate: %v\ninput: %s", verr, raw)
		}
		// The coupling envelope every accepted node must sit inside — the
		// DP tables and cache signatures assume exactly this.
		if !(node.MillerMax >= 0) || node.MillerMax > 2 {
			t.Fatalf("accepted MillerMax %g outside [0,2]\ninput: %s", node.MillerMax, raw)
		}
		if node.MillerMin > node.MillerMax {
			t.Fatalf("accepted MillerMin %g > MillerMax %g\ninput: %s", node.MillerMin, node.MillerMax, raw)
		}
		if !(node.ShieldUPerM >= 0) || math.IsInf(node.ShieldUPerM, 1) {
			t.Fatalf("accepted ShieldUPerM %g\ninput: %s", node.ShieldUPerM, raw)
		}
		for _, l := range node.Layers {
			if !(l.CcFPerM >= 0) || math.IsInf(l.CcFPerM, 1) {
				t.Fatalf("accepted layer %q CcFPerM %g\ninput: %s", l.Name, l.CcFPerM, raw)
			}
		}
		// HasCoupling must survive the registry's persist/reload pair —
		// a snapshot taken on a coupled node must never be validated
		// against an uncoupled reload of the same bytes.
		var buf bytes.Buffer
		if err := node.Write(&buf); err != nil {
			t.Fatalf("round-trip write: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip read: %v\ninput: %s", err, raw)
		}
		if again.HasCoupling() != node.HasCoupling() {
			t.Fatalf("round trip changed HasCoupling: %v vs %v\ninput: %s",
				again.HasCoupling(), node.HasCoupling(), raw)
		}
		if again.MillerMin != node.MillerMin || again.MillerMax != node.MillerMax || again.ShieldUPerM != node.ShieldUPerM {
			t.Fatalf("round trip changed coupling fields: %+v vs %+v", again, node)
		}
		for i, l := range node.Layers {
			if again.Layers[i].CcFPerM != l.CcFPerM {
				t.Fatalf("round trip changed layer %q CcFPerM: %g vs %g", l.Name, again.Layers[i].CcFPerM, l.CcFPerM)
			}
		}
	})
}

// TestCouplingMutantsRejected pins the fuzz property's failure classes
// as a plain test: every coupling mutant the validator guards must be a
// load error (encoding/json already rejects the NaN-shaped ones).
func TestCouplingMutantsRejected(t *testing.T) {
	const base = `"rs_ohm":2e4,"co_f":1e-15,"cp_f":1e-15,"vdd_v":1,"freq_hz":1e9,"activity":0.1,"leak_w_per_unit":0`
	for _, in := range []string{
		`{"name":"ccnan",` + base + `,"miller_max":2,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":NaN}]}`,
		`{"name":"ccinf",` + base + `,"miller_max":2,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e999}]}`,
		`{"name":"ccneg",` + base + `,"miller_max":2,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":-1e-10}]}`,
		`{"name":"mfhigh",` + base + `,"miller_max":2.5,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
		`{"name":"mfneg",` + base + `,"miller_max":-1,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
		`{"name":"mfinv",` + base + `,"miller_min":1.5,"miller_max":1,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
		`{"name":"shneg",` + base + `,"miller_max":2,"shield_u_per_m":-1,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
		`{"name":"shinf",` + base + `,"miller_max":2,"shield_u_per_m":1e999,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10,"cc_f_per_m":1e-10}]}`,
	} {
		if _, err := Read(bytes.NewReader([]byte(in))); err == nil {
			t.Fatalf("Read accepted coupling mutant: %s", in)
		}
	}
	// A coupled node with an uncoupled layer is NOT a mutant: cc defaults
	// to zero per layer, and MillerMax alone switches the model on.
	ok := `{"name":"nocc",` + base + `,"miller_max":2,"layers":[{"name":"m1","r_ohm_per_m":1,"c_f_per_m":1e-10}]}`
	node, err := Read(bytes.NewReader([]byte(ok)))
	if err != nil {
		t.Fatalf("Read rejected a valid coupled node with cc-less layer: %v", err)
	}
	if !node.HasCoupling() {
		t.Fatal("MillerMax 2 node reports HasCoupling() == false")
	}
}
