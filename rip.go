package rip

import (
	"math/rand"

	"github.com/rip-eda/rip/internal/core"
	"github.com/rip-eda/rip/internal/delay"
	"github.com/rip-eda/rip/internal/dp"
	"github.com/rip-eda/rip/internal/netgen"
	"github.com/rip-eda/rip/internal/power"
	"github.com/rip-eda/rip/internal/repeater"
	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/units"
	"github.com/rip-eda/rip/internal/wire"
)

// Re-exported model types. The aliases keep one canonical definition in the
// implementation packages while giving users a single import.
type (
	// Net is a routed two-pin interconnect instance with its driver and
	// receiver widths (Problem LPRI's input).
	Net = wire.Net
	// Line is the immutable segment chain with forbidden zones.
	Line = wire.Line
	// Segment is one wire piece with homogeneous RC density (SI units).
	Segment = wire.Segment
	// Zone is a forbidden interval where no repeater may be placed.
	Zone = wire.Zone
	// Technology is a process node: unit-repeater Rs/Co/Cp, supply,
	// activity and routing layers.
	Technology = tech.Technology
	// Layer is one routing layer's RC densities.
	Layer = tech.Layer
	// Library is a sorted set of allowed repeater widths (units of u).
	Library = repeater.Library
	// Assignment is a repeater placement: positions plus widths.
	Assignment = delay.Assignment
	// Evaluator computes Elmore delays and derivatives for one net.
	Evaluator = delay.Evaluator
	// Solution is a discrete repeater insertion result.
	Solution = dp.Solution
	// Config parameterizes the RIP pipeline.
	Config = core.Config
	// Result is the RIP pipeline's outcome with per-phase report.
	Result = core.Result
	// RefineOptions tunes the analytical REFINE solver.
	RefineOptions = core.RefineOptions
	// RefineResult is REFINE's continuous solution.
	RefineResult = core.RefineResult
	// WidthResult is the continuous KKT width solve's outcome.
	WidthResult = core.WidthResult
	// PowerModel converts total repeater width into watts.
	PowerModel = power.Model
)

// Unit conversion constants (SI internally; the paper quotes µm and fF/µm).
const (
	// Micron is one micrometer in meters.
	Micron = units.Micron
	// NanoSecond is one nanosecond in seconds.
	NanoSecond = units.NanoSecond
	// FemtoFarad is one femtofarad in farads.
	FemtoFarad = units.FemtoFarad
)

// ε-relaxation constants (see engine.Job.Eps and dp.Options.Eps): a
// relaxed min-power solve still meets its budget exactly but may return
// up to the exact optimum width at target/(1+eps) — certified, and an
// order of magnitude faster at the recommended default.
const (
	// MaxEps is the largest accepted ε relaxation.
	MaxEps = dp.MaxEps
	// DefaultEps is the recommended relaxation (≈2 % certified bound).
	DefaultEps = dp.DefaultEps
)

// T180 returns the default synthetic 0.18 µm node the experiments use.
func T180() *Technology { return tech.T180() }

// BuiltinTech returns a built-in node by name: "180nm", "130nm", "90nm" or
// "65nm".
func BuiltinTech(name string) (*Technology, error) { return tech.Builtin(name) }

// NewLine validates segments and zones and builds a Line.
func NewLine(segs []Segment, zones []Zone) (*Line, error) { return wire.New(segs, zones) }

// UniformLine builds a single-segment line without zones.
func UniformLine(length, rOhmPerM, cFPerM float64, layer string) (*Line, error) {
	return wire.Uniform(length, rOhmPerM, cFPerM, layer)
}

// NewLibrary builds a repeater library from explicit widths.
func NewLibrary(widths []float64) (Library, error) { return repeater.NewLibrary(widths) }

// UniformLibrary builds {min, min+step, ...} with count entries — the
// paper's baseline construction.
func UniformLibrary(min, step float64, count int) (Library, error) {
	return repeater.Uniform(min, step, count)
}

// DefaultConfig returns the paper's §6 pipeline configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewEvaluator builds a delay evaluator for the net under the technology.
func NewEvaluator(n *Net, t *Technology) (*Evaluator, error) { return delay.NewEvaluator(n, t) }

// Insert runs the full RIP pipeline: coarse DP → REFINE → concise library
// and local candidates → fine DP, returning the best feasible discrete
// solution and a per-phase report.
func Insert(n *Net, t *Technology, target float64, cfg Config) (Result, error) {
	ev, err := delay.NewEvaluator(n, t)
	if err != nil {
		return Result{}, err
	}
	return core.Insert(ev, target, cfg)
}

// Refine runs only the analytical phase: continuous width sizing (Eqs. 5
// and 8) plus derivative-guided movement (Fig. 5), from the given initial
// positions.
func Refine(n *Net, t *Technology, positions []float64, target float64, opts RefineOptions) (RefineResult, error) {
	ev, err := delay.NewEvaluator(n, t)
	if err != nil {
		return RefineResult{}, err
	}
	return core.Refine(ev, positions, target, opts)
}

// SolveWidths computes the continuous optimal repeater widths and Lagrange
// multiplier for fixed positions.
func SolveWidths(n *Net, t *Technology, positions []float64, target float64) (WidthResult, error) {
	ev, err := delay.NewEvaluator(n, t)
	if err != nil {
		return WidthResult{}, err
	}
	return core.SolveWidths(ev, positions, target, core.WidthOptions{})
}

// SolveDP runs the baseline dynamic program [14] directly with a uniform
// candidate pitch, minimizing total width subject to the timing target.
func SolveDP(n *Net, t *Technology, lib Library, pitch, target float64) (Solution, error) {
	ev, err := delay.NewEvaluator(n, t)
	if err != nil {
		return Solution{}, err
	}
	return dp.Solve(ev, dp.Options{Library: lib, Pitch: pitch, Objective: dp.MinPower, Target: target})
}

// MinimumDelay returns τmin — the minimum achievable Elmore delay over the
// reference candidate space (dp.ReferenceOptions: library 10u..400u step
// 10u at 200 µm pitch), the quantity the paper's timing targets are
// multiples of.
func MinimumDelay(n *Net, t *Technology) (float64, error) {
	ev, err := delay.NewEvaluator(n, t)
	if err != nil {
		return 0, err
	}
	opts, err := dp.ReferenceOptions()
	if err != nil {
		return 0, err
	}
	return dp.MinimumDelay(ev, opts)
}

// Delay evaluates the total Elmore delay of an assignment on the net.
func Delay(n *Net, t *Technology, a Assignment) (float64, error) {
	ev, err := delay.NewEvaluator(n, t)
	if err != nil {
		return 0, err
	}
	if err := ev.Validate(a); err != nil {
		return 0, err
	}
	return ev.Total(a), nil
}

// NewPowerModel builds a power model for converting solutions to watts.
func NewPowerModel(t *Technology) (*PowerModel, error) { return power.NewModel(t) }

// GenerateNets produces count random paper-style nets (§6 distribution)
// deterministically from the seed.
func GenerateNets(t *Technology, seed int64, count int) ([]*Net, error) {
	cfg, err := netgen.DefaultConfig(t)
	if err != nil {
		return nil, err
	}
	return netgen.Corpus(seed, count, cfg)
}

// GenerateNet produces one random net from the §6 distribution using the
// supplied random source.
func GenerateNet(t *Technology, rng *rand.Rand, name string) (*Net, error) {
	cfg, err := netgen.DefaultConfig(t)
	if err != nil {
		return nil, err
	}
	return netgen.Generate(rng, cfg, name)
}

// GenerateBusGroups produces count random bus track groups (2–6 parallel
// tracks each, §6 segment distribution, one shared geometry per group)
// deterministically from the seed — the workload Engine.SolveBus and
// /v1/bus co-optimize.
func GenerateBusGroups(t *Technology, seed int64, count int) ([][]*Net, error) {
	cfg, err := netgen.DefaultConfig(t)
	if err != nil {
		return nil, err
	}
	return netgen.BusCorpus(seed, count, cfg)
}
