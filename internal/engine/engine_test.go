package engine

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/rip-eda/rip/internal/core"
	"github.com/rip-eda/rip/internal/delay"
	"github.com/rip-eda/rip/internal/dp"
	"github.com/rip-eda/rip/internal/netgen"
	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/units"
	"github.com/rip-eda/rip/internal/wire"
)

func corpus(t *testing.T, seed int64, n int) []*wire.Net {
	t.Helper()
	node := tech.T180()
	cfg, err := netgen.DefaultConfig(node)
	if err != nil {
		t.Fatal(err)
	}
	nets, err := netgen.Corpus(seed, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nets
}

func jobsFor(nets []*wire.Net, mult float64) []Job {
	jobs := make([]Job, len(nets))
	for i, n := range nets {
		jobs[i] = Job{Net: n, TargetMult: mult}
	}
	return jobs
}

// TestBatchMatchesSerial: with the cache disabled, the concurrent batch
// must reproduce the serial per-net pipeline bit for bit, in input order.
func TestBatchMatchesSerial(t *testing.T) {
	node := tech.T180()
	nets := corpus(t, 11, 8)
	jobs := jobsFor(nets, 1.3)

	eng, err := New(node, Options{Workers: 4, Cache: CacheOptions{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Run(jobs)

	serial, err := New(node, Options{Workers: 1, Cache: CacheOptions{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		r := got[i]
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("net %d: %v", i, r.Err)
		}
		want := serial.Solve(j)
		if want.Err != nil {
			t.Fatalf("serial net %d: %v", i, want.Err)
		}
		if r.Res.Solution.TotalWidth != want.Res.Solution.TotalWidth ||
			r.Res.Solution.Delay != want.Res.Solution.Delay ||
			r.Res.Solution.Feasible != want.Res.Solution.Feasible {
			t.Fatalf("net %d: batch %+v != serial %+v", i, r.Res.Solution, want.Res.Solution)
		}
	}
}

// TestCacheAccounting: with one worker the hit/miss sequence is exact —
// the first pass over d distinct nets misses d times, every repeat hits.
func TestCacheAccounting(t *testing.T) {
	node := tech.T180()
	distinct := corpus(t, 5, 4)
	var nets []*wire.Net
	for rep := 0; rep < 5; rep++ {
		nets = append(nets, distinct...)
	}
	eng, err := New(node, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	results := eng.Run(jobsFor(nets, 1.3))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("net %d: %v", i, r.Err)
		}
		if !r.Res.Solution.Feasible {
			t.Fatalf("net %d unexpectedly infeasible", i)
		}
		if hitWanted := i >= len(distinct); r.CacheHit != hitWanted {
			t.Fatalf("net %d: CacheHit=%v, want %v", i, r.CacheHit, hitWanted)
		}
	}
	st := eng.CacheStats()
	if st.Misses != uint64(len(distinct)) || st.Hits != uint64(len(nets)-len(distinct)) {
		t.Fatalf("stats %+v: want %d misses, %d hits", st, len(distinct), len(nets)-len(distinct))
	}
	if st.Entries != len(distinct) {
		t.Fatalf("entries %d, want %d", st.Entries, len(distinct))
	}
	// A cache hit must agree with the miss that populated it on the
	// quantities that matter, with the delay recomputed on the actual net.
	for i := len(distinct); i < len(results); i++ {
		base := results[i%len(distinct)]
		hit := results[i]
		if hit.Res.Solution.TotalWidth != base.Res.Solution.TotalWidth {
			t.Fatalf("hit %d width %g != base %g", i, hit.Res.Solution.TotalWidth, base.Res.Solution.TotalWidth)
		}
		if math.Abs(hit.Res.Solution.Delay-base.Res.Solution.Delay) > 1e-15 {
			t.Fatalf("hit %d delay %g != base %g", i, hit.Res.Solution.Delay, base.Res.Solution.Delay)
		}
		if hit.TMin != base.TMin {
			t.Fatalf("hit %d τmin %g != base %g", i, hit.TMin, base.TMin)
		}
	}
}

// TestDPStatsAccounting: full solves accumulate DP work counters (τmin +
// coarse + fine per miss) while cache hits contribute nothing.
func TestDPStatsAccounting(t *testing.T) {
	node := tech.T180()
	distinct := corpus(t, 5, 3)
	var nets []*wire.Net
	for rep := 0; rep < 3; rep++ {
		nets = append(nets, distinct...)
	}
	eng, err := New(node, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds := eng.DPStats(); ds != (DPStats{}) {
		t.Fatalf("fresh engine has non-zero DP stats: %+v", ds)
	}
	for i, r := range eng.Run(jobsFor(nets, 1.3)) {
		if r.Err != nil {
			t.Fatalf("net %d: %v", i, r.Err)
		}
	}
	ds := eng.DPStats()
	// Each of the 3 distinct nets runs exactly τmin + the front sweep;
	// repeats are cache hits and add nothing.
	if ds.Solves < 2*uint64(len(distinct)) {
		t.Fatalf("Solves = %d, want ≥ %d (τmin + front per distinct net)", ds.Solves, 2*len(distinct))
	}
	if ds.Generated == 0 || ds.Kept == 0 || ds.MaxPerLevel == 0 {
		t.Fatalf("work counters not populated: %+v", ds)
	}
	if ds.Kept > ds.Generated {
		t.Fatalf("kept %d exceeds generated %d", ds.Kept, ds.Generated)
	}
	if ds.BudgetAborts != 0 {
		t.Fatalf("unexpected budget aborts: %+v", ds)
	}
	after := eng.DPStats()
	for i, r := range eng.Run(jobsFor(distinct, 1.3)) {
		if r.Err != nil {
			t.Fatalf("hit pass net %d: %v", i, r.Err)
		}
		if !r.CacheHit {
			t.Fatalf("hit pass net %d missed the cache", i)
		}
	}
	if got := eng.DPStats(); got != after {
		t.Fatalf("cache hits changed DP stats: %+v -> %+v", after, got)
	}
}

// TestDPBudgetAbortAccounting: a pipeline work budget small enough to
// trip surfaces per-net dp.ErrBudget failures AND is counted in DPStats,
// with the aborted runs' partial work still accumulated.
func TestDPBudgetAbortAccounting(t *testing.T) {
	node := tech.T180()
	nets := corpus(t, 5, 2)
	cfg := core.DefaultConfig()
	cfg.MaxGenerated = 10 // far below any real net's coarse-DP workload
	eng, err := New(node, Options{Workers: 1, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range eng.Run(jobsFor(nets, 1.3)) {
		if r.Err == nil || !errors.Is(r.Err, dp.ErrBudget) {
			t.Fatalf("net %d: want a dp.ErrBudget failure, got %v", i, r.Err)
		}
	}
	ds := eng.DPStats()
	if ds.BudgetAborts != uint64(len(nets)) {
		t.Fatalf("BudgetAborts = %d, want %d", ds.BudgetAborts, len(nets))
	}
	if ds.Generated == 0 {
		t.Fatal("aborted runs should still contribute their partial generated work")
	}
}

// TestConcurrentCacheInvariants: under full parallelism the exact hit
// split is racy, but every lookup is accounted exactly once and all
// results stay correct. Run with -race.
func TestConcurrentCacheInvariants(t *testing.T) {
	node := tech.T180()
	distinct := corpus(t, 7, 3)
	var nets []*wire.Net
	for rep := 0; rep < 8; rep++ {
		nets = append(nets, distinct...)
	}
	eng, err := New(node, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	results := eng.Run(jobsFor(nets, 1.4))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("net %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if !r.Res.Solution.Feasible {
			t.Fatalf("net %d infeasible", i)
		}
		if r.Res.Solution.Delay > r.Target*(1+1e-12) {
			t.Fatalf("net %d: delay %g exceeds target %g", i, r.Res.Solution.Delay, r.Target)
		}
	}
	st := eng.CacheStats()
	if st.Hits+st.Misses+st.Rejected != uint64(len(nets)) {
		t.Fatalf("lookup accounting leaks: %+v over %d jobs", st, len(nets))
	}
	if st.Misses < uint64(len(distinct)) {
		t.Fatalf("fewer misses (%d) than distinct nets (%d)", st.Misses, len(distinct))
	}
}

// TestErrorIsolation: malformed jobs fail individually without touching
// their neighbors, and infeasible nets are a verdict, not an error.
func TestErrorIsolation(t *testing.T) {
	node := tech.T180()
	nets := corpus(t, 3, 2)
	jobs := []Job{
		{Net: nets[0], TargetMult: 1.3},
		{Net: nil, TargetMult: 1.3},
		{Net: nets[1]},                                // no target at all
		{Net: nets[1], TargetMult: 1.2, Target: 1e-9}, // both targets
		{Net: nets[1], Target: 1e-15},                 // absurd target: infeasible, not an error
		{Net: nets[0], TargetMult: 1.3},
	}
	// One worker so the final job deterministically runs after the first
	// has populated the cache.
	eng, err := New(node, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	results := eng.Run(jobs)
	wantErr := []bool{false, true, true, true, false, false}
	for i, r := range results {
		if (r.Err != nil) != wantErr[i] {
			t.Fatalf("job %d: err=%v, want error=%v", i, r.Err, wantErr[i])
		}
	}
	if results[4].Res.Solution.Feasible {
		t.Fatal("femtosecond target cannot be feasible")
	}
	if !results[0].Res.Solution.Feasible || !results[5].Res.Solution.Feasible {
		t.Fatal("good jobs should have solved around the bad ones")
	}
	if !results[5].CacheHit {
		t.Fatal("repeated good job should hit the cache")
	}
}

// TestRunStream: streaming emits every result exactly once, in input
// order, even with a head-of-line job and full parallelism.
func TestRunStream(t *testing.T) {
	node := tech.T180()
	nets := corpus(t, 9, 6)
	const total = 48
	in := make(chan Job)
	eng, err := New(node, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := eng.RunStream(in)
	go func() {
		defer close(in)
		for i := 0; i < total; i++ {
			in <- Job{Net: nets[i%len(nets)], TargetMult: 1.25}
		}
	}()
	next := 0
	for r := range out {
		if r.Index != next {
			t.Fatalf("stream emitted index %d, want %d", r.Index, next)
		}
		if r.Err != nil {
			t.Fatalf("net %d: %v", r.Index, r.Err)
		}
		next++
	}
	if next != total {
		t.Fatalf("stream emitted %d results, want %d", next, total)
	}
}

// TestEviction: a capacity-bounded cache evicts and keeps working.
func TestEviction(t *testing.T) {
	node := tech.T180()
	nets := corpus(t, 13, 6)
	eng, err := New(node, Options{Workers: 1, Cache: CacheOptions{Capacity: 2, Shards: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		for _, r := range eng.Run(jobsFor(nets, 1.3)) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
	st := eng.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions with capacity 2 over %d distinct nets", len(nets))
	}
	if st.Entries > 2 {
		t.Fatalf("cache holds %d entries, capacity 2", st.Entries)
	}
}

// TestAbsoluteTargetCaching: absolute-target jobs cache and verify too.
func TestAbsoluteTargetCaching(t *testing.T) {
	node := tech.T180()
	net := corpus(t, 17, 1)[0]
	eng, err := New(node, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := 2 * units.NanoSecond
	first := eng.Solve(Job{Net: net, Target: target})
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	second := eng.Solve(Job{Net: net, Target: target})
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !first.Res.Solution.Feasible {
		t.Skip("2 ns infeasible for this net; corpus drifted")
	}
	if !second.CacheHit {
		t.Fatal("identical absolute-target job should hit")
	}
	if second.Res.Solution.TotalWidth != first.Res.Solution.TotalWidth {
		t.Fatalf("hit width %g != miss width %g", second.Res.Solution.TotalWidth, first.Res.Solution.TotalWidth)
	}
}

// TestVerifiedHitRejection: an entry whose assignment is illegal on a
// signature-equal net must be rejected, not served. We force this by
// planting a quantized twin whose forbidden zone moved onto the cached
// repeater position (within the same 1 µm signature grid this cannot
// happen, so the twin uses a custom coarse quantum).
func TestVerifiedHitRejection(t *testing.T) {
	node := tech.T180()
	// A 10 mm uniform line; target forces several repeaters.
	mk := func(zoneStart, zoneEnd float64) *wire.Net {
		line, err := wire.New([]wire.Segment{
			{Length: 10e-3, ROhmPerM: 8e4, CFPerM: 2.3e-10, Layer: "metal4"},
		}, []wire.Zone{{Start: zoneStart, End: zoneEnd}})
		if err != nil {
			t.Fatal(err)
		}
		return &wire.Net{Name: "twin", Line: line, DriverWidth: 240, ReceiverWidth: 80}
	}
	// A 10 mm quantum collapses zone [1, 3] mm and zone [4, 4.9] mm to
	// the same signature even though their legal position sets differ
	// drastically: both bounds round to grid index 0.
	eng, err := New(node, Options{Workers: 1, Cache: CacheOptions{LengthQuantum: 10e-3}})
	if err != nil {
		t.Fatal(err)
	}
	a := eng.Solve(Job{Net: mk(1e-3, 3e-3), TargetMult: 1.2})
	if a.Err != nil {
		t.Fatal(a.Err)
	}
	if !a.Res.Solution.Feasible || a.Res.Solution.Assignment.N() == 0 {
		t.Fatalf("setup net should need repeaters, got %+v", a.Res.Solution)
	}
	b := eng.Solve(Job{Net: mk(4e-3, 4.9e-3), TargetMult: 1.2})
	if b.Err != nil {
		t.Fatal(b.Err)
	}
	// Whether the twin hit or was rejected, the served solution must be
	// legal for ITS net — that is the verification guarantee.
	evB, err := delay.NewEvaluator(mk(4e-3, 4.9e-3), node)
	if err != nil {
		t.Fatal(err)
	}
	if b.Res.Solution.Feasible {
		if err := evB.Validate(b.Res.Solution.Assignment); err != nil {
			t.Fatalf("served solution illegal on its own net: %v", err)
		}
	}
	st := eng.CacheStats()
	if st.Rejected == 0 && b.CacheHit {
		// Served from cache — then it must have verified legal above.
		t.Log("twin verified cleanly; rejection path not exercised this run")
	}
}

// TestPipelineConfigRespected: a non-default pipeline config flows
// through the engine into the native front space — the engine's answer
// must be bit-identical to a direct front solve over the space derived
// from that config.
func TestPipelineConfigRespected(t *testing.T) {
	node := tech.T180()
	net := corpus(t, 19, 1)[0]
	cfg := core.DefaultConfig()
	cfg.CoarsePitch = 400 * units.Micron
	cfg.RoundGranularity = 20 // front step 80u instead of the default 40u
	eng, err := New(node, Options{Workers: 1, Pipeline: cfg, Cache: CacheOptions{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	r := eng.Solve(Job{Net: net, TargetMult: 1.3})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Res.Report.Picked != core.PhaseFront {
		t.Fatalf("picked %q, want %q", r.Res.Report.Picked, core.PhaseFront)
	}
	ev, err := delay.NewEvaluator(net, node)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := frontOptions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front, _, err := dp.SolveFront(ev, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := front.At(r.Target)
	if !ok {
		t.Fatalf("direct front cannot meet target %g the engine met", r.Target)
	}
	want := front[idx]
	if r.Res.Solution.Delay != want.Delay || r.Res.Solution.TotalWidth != want.TotalWidth {
		t.Fatalf("engine (%g, %g) != direct front point (%g, %g) under custom config",
			r.Res.Solution.Delay, r.Res.Solution.TotalWidth, want.Delay, want.TotalWidth)
	}
	// The generation budget flows too: a tiny cap must abort the sweep.
	capped := core.DefaultConfig()
	capped.MaxGenerated = 10
	eng2, err := New(node, Options{Workers: 1, Pipeline: capped, Cache: CacheOptions{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r := eng2.Solve(Job{Net: net, TargetMult: 1.3}); !errors.Is(r.Err, dp.ErrBudget) {
		t.Fatalf("capped engine err = %v, want dp.ErrBudget", r.Err)
	}
}

// TestSolveContextCancelled: a cancelled context short-circuits before
// any solver phase and surfaces as a per-job error that errors.Is-matches
// the context error.
func TestSolveContextCancelled(t *testing.T) {
	node := tech.T180()
	net := corpus(t, 23, 1)[0]
	eng, err := New(node, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := eng.SolveContext(ctx, Job{Net: net, TargetMult: 1.3})
	if r.Err == nil {
		t.Fatal("cancelled context should fail the job")
	}
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("err %v should wrap context.Canceled", r.Err)
	}
	st := eng.CacheStats()
	if st.Hits+st.Misses+st.Rejected != 0 {
		t.Fatalf("cancelled job should not touch the cache: %+v", st)
	}
}

// TestRunContextCancelMidBatch: cancelling mid-batch fills every result
// slot — some solved, the rest context errors — and never deadlocks.
func TestRunContextCancelMidBatch(t *testing.T) {
	node := tech.T180()
	distinct := corpus(t, 29, 4)
	var nets []*wire.Net
	for rep := 0; rep < 16; rep++ {
		nets = append(nets, distinct...)
	}
	eng, err := New(node, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before start: every job must error, none may hang
	results := eng.RunContext(ctx, jobsFor(nets, 1.3))
	if len(results) != len(nets) {
		t.Fatalf("got %d results, want %d", len(results), len(nets))
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("job %d solved under a cancelled context", i)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: err %v should wrap context.Canceled", i, r.Err)
		}
	}
}

// TestRunStreamContextDeadline: an already-expired deadline drains the
// stream (ordered, one result per job) instead of solving or hanging.
func TestRunStreamContextDeadline(t *testing.T) {
	node := tech.T180()
	nets := corpus(t, 31, 3)
	eng, err := New(node, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	in := make(chan Job)
	out := eng.RunStreamContext(ctx, in)
	go func() {
		defer close(in)
		for i := 0; i < 12; i++ {
			in <- Job{Net: nets[i%len(nets)], TargetMult: 1.3}
		}
	}()
	next := 0
	for r := range out {
		if r.Index != next {
			t.Fatalf("stream emitted index %d, want %d", r.Index, next)
		}
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("job %d: err %v should wrap context.DeadlineExceeded", r.Index, r.Err)
		}
		next++
	}
	if next != 12 {
		t.Fatalf("stream emitted %d results, want 12", next)
	}
}

// TestSolveQueueCancellation: a job queued behind a saturated engine-wide
// worker budget honors cancellation while waiting for a slot.
func TestSolveQueueCancellation(t *testing.T) {
	node := tech.T180()
	net := corpus(t, 47, 1)[0]
	eng, err := New(node, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.solveSlots <- struct{}{} // occupy the only slot
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	r := eng.SolveContext(ctx, Job{Net: net, TargetMult: 1.3})
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("queued job err %v, want deadline exceeded", r.Err)
	}
	<-eng.solveSlots // release; the engine must be fully usable again
	if r := eng.Solve(Job{Net: net, TargetMult: 1.3}); r.Err != nil {
		t.Fatalf("post-release solve: %v", r.Err)
	}
}

// TestOverlappingRunsShareWorkerBudget: concurrent Run calls on one
// engine complete correctly while sharing the engine-wide solve bound.
// Run with -race.
func TestOverlappingRunsShareWorkerBudget(t *testing.T) {
	node := tech.T180()
	nets := corpus(t, 53, 3)
	eng, err := New(node, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 3
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, r := range eng.Run(jobsFor(nets, 1.3)) {
				if r.Err != nil {
					t.Errorf("net %d: %v", i, r.Err)
				}
				if !r.Res.Solution.Feasible {
					t.Errorf("net %d infeasible", i)
				}
			}
		}()
	}
	wg.Wait()
	st := eng.CacheStats()
	if st.Hits+st.Misses+st.Rejected != uint64(callers*len(nets)) {
		t.Fatalf("lookup accounting leaks across overlapping runs: %+v", st)
	}
}
