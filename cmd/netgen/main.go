// Command netgen emits a corpus of random paper-style two-pin nets (the
// distribution of the paper's §6) as a JSON array, for use with ripcli or
// external tools.
//
// Usage:
//
//	netgen -seed 2005 -count 20 > nets.json
//	netgen -seed 7 -count 5 -o corpus.json -tech 90nm
package main

import (
	"flag"
	"fmt"
	"os"

	rip "github.com/rip-eda/rip"
	"github.com/rip-eda/rip/internal/wire"
)

func main() {
	var (
		seed     = flag.Int64("seed", 2005, "generator seed")
		count    = flag.Int("count", 20, "number of nets")
		out      = flag.String("o", "", "output file (default stdout)")
		techName = flag.String("tech", "180nm", "built-in technology node (layer RC source)")
	)
	flag.Parse()

	tech, err := rip.BuiltinTech(*techName)
	if err != nil {
		fatal(err)
	}
	nets, err := rip.GenerateNets(tech, *seed, *count)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := wire.WriteNets(w, nets); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d nets to %s\n", len(nets), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netgen:", err)
	os.Exit(1)
}
