package experiments

import (
	"fmt"
	"io"

	"github.com/rip-eda/rip/internal/analytic"
	"github.com/rip-eda/rip/internal/delay"
)

// AnalyticRow aggregates one net's closed-form-vs-RIP comparison.
type AnalyticRow struct {
	Net string
	// ModelInfeasible counts targets the uniform model itself cannot meet
	// (its τmin differs from the real net's).
	ModelInfeasible int
	// RealViolations counts targets where the embedded analytical
	// solution misses timing on the real (non-uniform, zoned) net even
	// though the uniform model predicted it would pass — the paper's core
	// motivation for hybrid schemes.
	RealViolations int
	// MeanWidthVsRIPPct is the mean width overhead of the analytical
	// solution relative to RIP across targets where the analytical
	// embedding is actually feasible (positive = analytic spends more).
	MeanWidthVsRIPPct float64
	// Compared counts the targets entering MeanWidthVsRIPPct.
	Compared int
}

// AnalyticResult is the corpus-level closed-form comparison.
type AnalyticResult struct {
	Rows []AnalyticRow
	// TotalTargets is the number of targets per net.
	TotalTargets int
}

// AnalyticCompare reproduces the paper's §1–2 motivation quantitatively:
// apply the classical closed-form power-optimal sizing (uniform-line
// model) to every corpus net, embed the answer on the real line (snapping
// repeaters out of forbidden zones), and measure how often it actually
// meets timing and how much width it spends compared with RIP.
func AnalyticCompare(s *Setup) (*AnalyticResult, error) {
	cases, err := s.Prepare()
	if err != nil {
		return nil, err
	}
	res := &AnalyticResult{TotalTargets: len(s.Multipliers)}
	for _, c := range cases {
		row := AnalyticRow{Net: c.Net.Name}
		params := analytic.FromLine(c.Net.Line)
		var sumPct float64
		for _, mult := range s.Multipliers {
			target := mult * c.TMin
			sizing, err := analytic.PowerOptimal(s.Tech, params, target)
			if err != nil {
				row.ModelInfeasible++
				continue
			}
			asg, err := analytic.ToAssignment(c.Net.Line, sizing)
			if err != nil {
				return nil, err
			}
			realDelay, feasible := evalEmbedded(c.Eval, asg)
			if !feasible || realDelay > target {
				row.RealViolations++
				continue
			}
			rip, _, err := s.solveRIP(c, target)
			if err != nil {
				return nil, err
			}
			if !rip.Solution.Feasible || rip.Solution.TotalWidth == 0 {
				continue
			}
			sumPct += 100 * (asg.TotalWidth() - rip.Solution.TotalWidth) / rip.Solution.TotalWidth
			row.Compared++
		}
		if row.Compared > 0 {
			row.MeanWidthVsRIPPct = sumPct / float64(row.Compared)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// evalEmbedded evaluates an embedded analytical assignment on the real
// net, reporting (delay, structurally-legal).
func evalEmbedded(ev *delay.Evaluator, a delay.Assignment) (float64, bool) {
	if err := ev.Validate(a); err != nil {
		return 0, false
	}
	return ev.Total(a), true
}

// Render writes the comparison as an ASCII table.
func (r *AnalyticResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Closed-form analytical baseline vs RIP (%d targets per net).\n", r.TotalTargets)
	fmt.Fprintln(w, "net     model-infeas  real-violations  Δwidth vs RIP  compared")
	var vio, inf, cmp int
	var pct float64
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-7s %12d %16d %13.1f%% %9d\n",
			row.Net, row.ModelInfeasible, row.RealViolations, row.MeanWidthVsRIPPct, row.Compared)
		vio += row.RealViolations
		inf += row.ModelInfeasible
		pct += row.MeanWidthVsRIPPct * float64(row.Compared)
		cmp += row.Compared
	}
	mean := 0.0
	if cmp > 0 {
		mean = pct / float64(cmp)
	}
	fmt.Fprintf(w, "TOTAL   %12d %16d %13.1f%% %9d\n", inf, vio, mean, cmp)
	fmt.Fprintln(w, "(real-violations: uniform-model solutions that miss timing on the real zoned net —")
	fmt.Fprintln(w, " the failure mode §2 attributes to analytical schemes; RIP has none by construction)")
}

// WriteCSV writes the rows as CSV.
func (r *AnalyticResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "net,model_infeasible,real_violations,mean_width_vs_rip_pct,compared"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.4f,%d\n",
			row.Net, row.ModelInfeasible, row.RealViolations, row.MeanWidthVsRIPPct, row.Compared); err != nil {
			return err
		}
	}
	return nil
}
