package rip_test

// Differential sweep for the front-native engine: across every built-in
// node, both net kinds and a 25-budget ladder (13 relative + 12
// absolute), answers served by front lookup from a warm engine must
// match fresh budget-specific solves — the old one-budget-one-solve path
// preserved in reference form by a cache-disabled engine. Placements are
// compared bit for bit; served line delays are recomputed on the actual
// net at hit time, so they carry an ulp-level re-evaluation tolerance
// (tree slacks are recomputed on both paths and must agree exactly).

import (
	"math"
	"testing"

	rip "github.com/rip-eda/rip"
)

// sweepLadder builds the 25-budget ladder for a net with minimum delay
// tmin: 13 relative multipliers and 12 absolute targets, interleaved
// over [1.3, 2.5]×τmin — all feasible for corpus nets.
func sweepLadder(tmin float64) (mults, targets []float64) {
	for k := 0; k < 13; k++ {
		mults = append(mults, 1.3+0.1*float64(k))
	}
	for k := 0; k < 12; k++ {
		targets = append(targets, (1.35+0.095*float64(k))*tmin)
	}
	return mults, targets
}

// sameSweepLine compares a front-lookup line answer against a fresh
// budget-specific solve: assignment and width bitwise, delay within the
// hit path's re-evaluation tolerance.
func sameSweepLine(t *testing.T, label string, got, want rip.BatchResult) {
	t.Helper()
	if got.Err != nil || want.Err != nil {
		t.Fatalf("%s: errs lookup=%v fresh=%v", label, got.Err, want.Err)
	}
	gs, ws := got.Res.Solution, want.Res.Solution
	if gs.Feasible != ws.Feasible || gs.TotalWidth != ws.TotalWidth ||
		got.Target != want.Target || got.TMin != want.TMin {
		t.Fatalf("%s: lookup %+v (target %g τmin %g) != fresh %+v (target %g τmin %g)",
			label, gs, got.Target, got.TMin, ws, want.Target, want.TMin)
	}
	if len(gs.Assignment.Positions) != len(ws.Assignment.Positions) {
		t.Fatalf("%s: %d repeaters vs %d", label, len(gs.Assignment.Positions), len(ws.Assignment.Positions))
	}
	for i := range gs.Assignment.Positions {
		if gs.Assignment.Positions[i] != ws.Assignment.Positions[i] ||
			gs.Assignment.Widths[i] != ws.Assignment.Widths[i] {
			t.Fatalf("%s: assignment differs at repeater %d", label, i)
		}
	}
	if d := math.Abs(gs.Delay - ws.Delay); d > 1e-12*math.Max(gs.Delay, ws.Delay) {
		t.Fatalf("%s: delay %g vs %g beyond re-evaluation tolerance", label, gs.Delay, ws.Delay)
	}
	if got.Res.Report.Picked != want.Res.Report.Picked {
		t.Fatalf("%s: picked %v vs %v", label, got.Res.Report.Picked, want.Res.Report.Picked)
	}
}

// TestConformanceFrontSweepLine: per node, solve one net cold on a warm
// engine, then answer the whole ladder from its cached front; every
// answer must match a fresh cache-disabled solve of that exact budget,
// and a single multi-budget job must reproduce the per-budget answers
// bit for bit.
func TestConformanceFrontSweepLine(t *testing.T) {
	if testing.Short() {
		t.Skip("25-budget differential sweep")
	}
	for _, techName := range conformanceNodes {
		node, err := rip.BuiltinTech(techName)
		if err != nil {
			t.Fatal(err)
		}
		nets, err := rip.GenerateNets(node, 83, 1)
		if err != nil {
			t.Fatal(err)
		}
		net := nets[0]
		tmin, err := rip.MinimumDelay(net, node)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := rip.NewEngine(node, rip.EngineOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := rip.NewEngine(node, rip.EngineOptions{Workers: 1, Cache: rip.CacheOptions{Disabled: true}})
		if err != nil {
			t.Fatal(err)
		}
		mults, targets := sweepLadder(tmin)
		for _, m := range mults {
			j := rip.BatchJob{Net: net, TargetMult: m}
			sameSweepLine(t, techName+"/rel", warm.Solve(j), fresh.Solve(j))
		}
		var fromSingles []rip.BatchResult
		for _, target := range targets {
			j := rip.BatchJob{Net: net, Target: target}
			got, want := warm.Solve(j), fresh.Solve(j)
			sameSweepLine(t, techName+"/abs", got, want)
			fromSingles = append(fromSingles, got)
		}
		// The batched sweep must reproduce the individual lookups exactly:
		// one job, every budget, same cached front.
		sweep := warm.Solve(rip.BatchJob{Net: net, Budgets: targets})
		if sweep.Err != nil {
			t.Fatalf("%s: sweep: %v", techName, sweep.Err)
		}
		if len(sweep.Sweep) != len(targets) {
			t.Fatalf("%s: sweep answered %d budgets, want %d", techName, len(sweep.Sweep), len(targets))
		}
		for k, ba := range sweep.Sweep {
			single := fromSingles[k].Res.Solution
			batch := ba.Res.Solution
			if ba.Budget != targets[k] || batch.Feasible != single.Feasible ||
				batch.Delay != single.Delay || batch.TotalWidth != single.TotalWidth {
				t.Fatalf("%s: sweep budget %d differs from single solve: %+v vs %+v",
					techName, k, batch, single)
			}
		}
	}
}

// TestConformanceFrontSweepTree is the tree leg: uniform-deadline
// answers on both budget forms, bit-identical between front lookup and
// fresh solve — tree answers recompute slack on the actual tree on every
// path, so the comparison is exact.
func TestConformanceFrontSweepTree(t *testing.T) {
	if testing.Short() {
		t.Skip("25-budget differential sweep")
	}
	for _, techName := range conformanceNodes {
		node, err := rip.BuiltinTech(techName)
		if err != nil {
			t.Fatal(err)
		}
		trees, err := rip.GenerateTreeNets(node, 89, 1)
		if err != nil {
			t.Fatal(err)
		}
		tn := trees[0]
		tmin, err := rip.TreeMinimumDelay(tn, node)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := rip.NewEngine(node, rip.EngineOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := rip.NewEngine(node, rip.EngineOptions{Workers: 1, Cache: rip.CacheOptions{Disabled: true}})
		if err != nil {
			t.Fatal(err)
		}
		mults, targets := sweepLadder(tmin)
		for _, m := range mults {
			j := rip.BatchJob{TreeNet: tn, TargetMult: m}
			sameTreeResult(t, techName+"/rel", warm.Solve(j), fresh.Solve(j))
		}
		for _, target := range targets {
			j := rip.BatchJob{TreeNet: tn, Target: target}
			sameTreeResult(t, techName+"/abs", warm.Solve(j), fresh.Solve(j))
		}
		sweep := warm.Solve(rip.BatchJob{TreeNet: tn, Budgets: targets})
		if sweep.Err != nil {
			t.Fatalf("%s: tree sweep: %v", techName, sweep.Err)
		}
		for k, ba := range sweep.Sweep {
			want := fresh.Solve(rip.BatchJob{TreeNet: tn, Target: targets[k]})
			if !ba.TreeRes.Solution.Feasible || ba.TreeRes.Solution.Slack != want.TreeRes.Solution.Slack ||
				ba.TreeRes.Solution.TotalWidth != want.TreeRes.Solution.TotalWidth {
				t.Fatalf("%s: tree sweep budget %d differs: %+v vs %+v",
					techName, k, ba.TreeRes.Solution, want.TreeRes.Solution)
			}
		}
	}
}
