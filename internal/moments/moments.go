// Package moments computes the first two moments of a repeater stage's
// transfer function and derives higher-order delay metrics from them.
//
// The RIP paper evaluates delay with the Elmore model and notes (§4.1)
// that "more accurate analytical delay models can be used by replacing the
// Elmore delay with the corresponding delay functions". This package is
// that replacement: it computes m1 (the Elmore value) and m2 of each stage
// under exactly the paper's circuit model (Figure 2: switch-level driver,
// per-segment lumped-π wire, capacitive receiver) and provides the D2M
// two-moment metric of Alpert, Devgan and Kashyap,
//
//	τ_D2M = ln2 · m1² / √m2,
//
// which is exact for a single pole and substantially tighter than Elmore
// on resistively shielded stages. The optimizers keep using Elmore (as the
// paper does); moments are for reporting and verification.
package moments

import (
	"fmt"
	"math"

	"github.com/rip-eda/rip/internal/delay"
	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/wire"
)

// StageMoments holds the first two moments of one repeater stage's
// response at the receiving node. m1 is in seconds, m2 in seconds².
type StageMoments struct {
	M1, M2 float64
}

// D2M returns the two-moment delay estimate ln2·m1²/√m2. For a single
// pole (m2 = m1²) it reduces to ln2·m1, the exact 50% step delay.
func (m StageMoments) D2M() float64 {
	if m.M2 <= 0 {
		return 0
	}
	return math.Ln2 * m.M1 * m.M1 / math.Sqrt(m.M2)
}

// ElmoreDelay returns the classic Elmore metric: m1 itself.
func (m StageMoments) ElmoreDelay() float64 { return m.M1 }

// Stage computes the moments of one stage: the driver of width wDrive at
// position from, the wire [from, to], and the receiving repeater of width
// wLoad. The RC ladder is the paper's Figure 2 with one π per homogeneous
// wire piece.
func Stage(line *wire.Line, t *tech.Technology, from, to, wDrive, wLoad float64) (StageMoments, error) {
	if !(wDrive > 0) || !(wLoad > 0) {
		return StageMoments{}, fmt.Errorf("moments: stage widths must be positive, got %g, %g", wDrive, wLoad)
	}
	if to < from {
		return StageMoments{}, fmt.Errorf("moments: inverted stage [%g, %g]", from, to)
	}
	pieces := line.Pieces(from, to)
	k := len(pieces)
	// Ladder nodes 0..k: node 0 is the driver output, node k the receiver
	// input. res[i] is the resistance feeding node i; caps[i] the lumped
	// capacitance at node i.
	res := make([]float64, k+1)
	caps := make([]float64, k+1)
	res[0] = t.Rs / wDrive
	caps[0] = t.Cp * wDrive
	for i, p := range pieces {
		half := p.C() / 2
		caps[i] += half
		caps[i+1] += half
		res[i+1] = p.R()
	}
	caps[k] += t.Co * wLoad
	return ladderMoments(res, caps), nil
}

// ladderMoments computes (m1, m2) at the last node of an RC ladder:
// res[i] feeds node i from node i−1 (res[0] from the source), caps[i]
// loads node i. Uses the standard recursions
//
//	m1(n) = Σ_i C_i·R(0→min(i,n)),   m2(load) = Σ_i C_i·R(0→i)·m1(i),
//
// evaluated in O(k) with prefix/suffix sums.
func ladderMoments(res, caps []float64) StageMoments {
	n := len(caps)
	// rpre[i] = resistance from source to node i.
	rpre := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += res[i]
		rpre[i] = acc
	}
	// csuf[i] = Σ_{j≥i} caps[j]; crpre[i] = Σ_{j<i} caps[j]·rpre[j].
	csuf := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		csuf[i] = csuf[i+1] + caps[i]
	}
	crpre := make([]float64, n+1)
	for i := 0; i < n; i++ {
		crpre[i+1] = crpre[i] + caps[i]*rpre[i]
	}
	// m1 at each node: m1(i) = crpre[i] + rpre[i]·csuf[i].
	m1load := crpre[n-1] + rpre[n-1]*csuf[n-1] // = Σ C_j·rpre[min(j, n-1)]
	var m2 float64
	for i := 0; i < n; i++ {
		m1i := crpre[i] + rpre[i]*csuf[i]
		m2 += caps[i] * rpre[i] * m1i
	}
	return StageMoments{M1: m1load, M2: m2}
}

// Metric selects a delay metric for Assignment evaluation.
type Metric int

const (
	// Elmore is the first-moment metric the optimizers use.
	Elmore Metric = iota
	// D2M is the two-moment metric ln2·m1²/√m2, summed over stages.
	D2M
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Elmore:
		return "elmore"
	case D2M:
		return "d2m"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Assignment evaluates the total delay of a repeater assignment under the
// chosen metric, stage by stage (the direct generalization of the paper's
// Eq. 2). With Metric == Elmore it reproduces delay.Evaluator.Total
// exactly — asserting that equality is one of this package's tests.
func Assignment(ev *delay.Evaluator, a delay.Assignment, metric Metric) (float64, error) {
	n := a.N()
	total := 0.0
	for i := 0; i <= n; i++ {
		from, wDrive := 0.0, ev.Wd
		if i > 0 {
			from, wDrive = a.Positions[i-1], a.Widths[i-1]
		}
		to, wLoad := ev.Line.Length(), ev.Wr
		if i < n {
			to, wLoad = a.Positions[i], a.Widths[i]
		}
		sm, err := Stage(ev.Line, ev.Tech, from, to, wDrive, wLoad)
		if err != nil {
			return 0, err
		}
		switch metric {
		case Elmore:
			total += sm.ElmoreDelay()
		case D2M:
			total += sm.D2M()
		default:
			return 0, fmt.Errorf("moments: unknown metric %v", metric)
		}
	}
	return total, nil
}

// Compare reports both metrics for an assignment; handy for reports.
type Compare struct {
	Elmore float64
	D2M    float64
}

// Ratio returns D2M/Elmore, the tightening factor (≤ 1 on RC ladders).
func (c Compare) Ratio() float64 {
	if c.Elmore == 0 {
		return 0
	}
	return c.D2M / c.Elmore
}

// Both evaluates both metrics in one pass.
func Both(ev *delay.Evaluator, a delay.Assignment) (Compare, error) {
	e, err := Assignment(ev, a, Elmore)
	if err != nil {
		return Compare{}, err
	}
	d, err := Assignment(ev, a, D2M)
	if err != nil {
		return Compare{}, err
	}
	return Compare{Elmore: e, D2M: d}, nil
}
