// Command ripd serves repeater insertion over HTTP: a long-running
// process around one shared multi-technology batch engine, so the
// solution caches are a cross-request asset — a net solved for one
// client is a warm hit for every later request with the same signature
// on the same node.
//
// Usage:
//
//	ripd                                   # :8080, all built-in nodes, 180nm default
//	ripd -addr :9000 -tech 65nm -cache 65536
//	ripd -techs 90nm,65nm                  # serve only these nodes
//	ripd -tech-dir ./nodes -tech foundry-90lp   # + custom JSON nodes
//	ripd -max-inflight 64 -timeout 30s    # backpressure + per-request budget
//	ripd -eps 0.02                        # serve ε-relaxed min-power answers by default
//	ripd -aggressor worst -scheme staggered   # crosstalk-aware defaults
//	ripd -cache-save rip.snap -cache-load rip.snap   # warm restarts
//	ripd -self host1:8080 -peers host1:8080,host2:8080,host3:8080   # ring
//
// Endpoints (wire format shared with ripcli -batch; see internal/api):
//
//	POST /v1/optimize   {"net": {...}, "tech": "90nm", "target_mult": 1.2} → solution;
//	                    "targets_ns": [0.8, 1.0] answers every listed budget
//	                    from one cached Pareto front ("sweep" in the response)
//	POST /v1/batch      JSON array or JSONL stream of the same → solutions;
//	                    lines may mix technology nodes freely
//	POST /v1/front      {"net": {...}, "tech": "90nm"} → the net's full
//	                    power–delay Pareto front (no budget required)
//	POST /v1/bus        {"tracks": [{...}, ...], "target_mult": 1.2} →
//	                    joint co-optimization of parallel tracks: per-track
//	                    schemes plus the group area/power the coordination
//	                    saved vs independent worst-case sign-off
//	GET  /livez         process liveness (always 200 while up)
//	GET  /readyz        traffic readiness: 503 while draining or while a
//	                    snapshot restore is still running; reports ring
//	                    peers and snapshot age (/healthz is an alias)
//	GET  /metrics       Prometheus text (requests, latency, per-tech
//	                    rip_cache_*/rip_dp_*/rip_front_*/rip_bus_*
//	                    {tech="..."} and rip_cluster_*/rip_snapshot_*
//	                    series)
//
// With -eps, line requests that carry no "eps" of their own are solved
// ε-relaxed: answers still meet their budgets exactly, but the solves
// run up to an order of magnitude faster, certified to return at most
// the exact optimum width at target/(1+eps). Each relaxed response
// carries "eps" and its certified "eps_bound"; a request's explicit
// "eps": 0 always forces bit-exact solving, and /v1/front never
// inherits the default. Exact and relaxed fronts cache separately, so
// the modes cannot contaminate each other.
//
// With -aggressor, line requests that carry no "aggressor" of their
// own are solved under that crosstalk scenario (-scheme picks which
// countermeasures the solver may deploy; see internal/delay). A
// request's explicit "aggressor": "none" always forces the classic
// ground-only model, and /v1/front never inherits the defaults.
// Coupled and uncoupled solves cache separately.
//
// Requests without a "tech" field solve on the -tech default node;
// unknown names get a 400 (single) or per-line error (batch) listing the
// served nodes. Every failure carries the structured error envelope
// {"error": {"code", "message", ...}}. Saturation answers 429 (with
// Retry-After) rather than queuing unboundedly.
//
// With -cache-save, the Pareto-front caches are snapshotted to disk
// periodically and at shutdown (atomic rename — kill -9 never leaves a
// torn file); with -cache-load, a snapshot is restored at boot in the
// background while /readyz reports "loading". Restored entries are
// verified against the actual net before being served.
//
// With -peers, the replicas form a consistent-hash ring over net-shape
// signatures: each shape has one owning replica, non-owners forward to
// it over the ordinary /v1/* wire format, and the fleet's caches
// partition instead of duplicating. An unreachable owner degrades to a
// local solve (default) or an explicit retryable peer_unavailable error
// (-peer-strict).
//
// SIGINT/SIGTERM starts a graceful drain: /readyz flips to 503 so load
// balancers stop routing here, in-flight requests finish (bounded by
// -grace), a final snapshot is written, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	rip "github.com/rip-eda/rip"
	"github.com/rip-eda/rip/internal/cluster"
	"github.com/rip-eda/rip/internal/delay"
	"github.com/rip-eda/rip/internal/server"
	"github.com/rip-eda/rip/internal/snapshot"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		techName    = flag.String("tech", "", "default technology node for requests that name none (default: first of -techs)")
		techList    = flag.String("techs", "180nm,130nm,90nm,65nm", "comma-separated built-in nodes to serve")
		techDir     = flag.String("tech-dir", "", "directory of custom technology JSON files to serve (registered under their name)")
		workers     = flag.Int("workers", 0, "engine parallelism, shared across nodes (0 = all cores)")
		cacheSize   = flag.Int("cache", 0, "per-node solution-cache capacity (0 = default 4096, negative = disabled)")
		maxInFlight = flag.Int("max-inflight", 0, "concurrent requests admitted before 429 (0 = 4x workers)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-request solving timeout (0 = none)")
		target      = flag.Float64("target", 0, "default target_mult for requests that carry no budget (0 = require one per request)")
		defaultEps  = flag.Float64("eps", 0, "default ε relaxation for line requests that carry no eps (0 = bit-exact; max 0.5)")
		defaultAgg  = flag.String("aggressor", "", "default crosstalk aggressor for line requests that carry no \"aggressor\": worst, best, quiet or none (empty = classic ground-only model)")
		defaultSch  = flag.String("scheme", "", "default countermeasure scheme for coupled requests that carry no \"scheme\": plain, staggered, shielded or auto (needs -aggressor)")
		grace       = flag.Duration("grace", 30*time.Second, "shutdown drain budget for in-flight requests")

		cacheSave    = flag.String("cache-save", "", "snapshot the caches to this file periodically and at shutdown")
		cacheLoad    = flag.String("cache-load", "", "restore a cache snapshot from this file at boot (missing file is not an error)")
		saveInterval = flag.Duration("cache-save-interval", 5*time.Minute, "interval between background snapshots (requires -cache-save)")

		self        = flag.String("self", "", "this replica's own address as peers see it (required with -peers)")
		peers       = flag.String("peers", "", "comma-separated replica addresses forming the consistent-hash ring (include every replica; self is added if absent)")
		peerTimeout = flag.Duration("peer-timeout", 15*time.Second, "per-forward timeout for peer requests")
		peerStrict  = flag.Bool("peer-strict", false, "answer peer failures with a retryable peer_unavailable error instead of solving locally")
	)
	flag.Parse()

	if e := *defaultEps; e != 0 && !(e > 0 && e <= rip.MaxEps) {
		fatal(fmt.Errorf("ripd: -eps %g is not in [0, %g]", e, rip.MaxEps))
	}
	agg, err := delay.ParseAggressor(*defaultAgg)
	if err != nil {
		fatal(fmt.Errorf("ripd: -aggressor: %v", err))
	}
	if _, err := delay.ParseSchemeMode(*defaultSch); err != nil {
		fatal(fmt.Errorf("ripd: -scheme: %v", err))
	}
	if *defaultSch != "" && agg == delay.AggressorNone {
		fatal(fmt.Errorf("ripd: -scheme %q needs -aggressor worst, best or quiet", *defaultSch))
	}

	reg := rip.NewTechRegistry()
	defTech := *techName
	for _, name := range strings.Split(*techList, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		canonical, err := reg.RegisterBuiltin(name)
		if err != nil {
			fatal(err)
		}
		// Without an explicit -tech, the first served node is the
		// default — `ripd -techs 90nm,65nm` must come up serving 90nm by
		// default, not die resolving a node it was told not to serve.
		if defTech == "" {
			defTech = canonical
		}
	}
	if *techDir != "" {
		names, err := reg.LoadDir(*techDir)
		if err != nil {
			fatal(err)
		}
		log.Printf("ripd: loaded %d custom node(s) from %s: %s", len(names), *techDir, strings.Join(names, ", "))
		if defTech == "" && len(names) > 0 {
			defTech = names[0]
		}
	}
	opts := rip.EngineOptions{Workers: *workers}
	if *cacheSize < 0 {
		opts.Cache.Disabled = true
	} else {
		opts.Cache.Capacity = *cacheSize
	}
	eng, err := rip.NewMultiEngine(reg, defTech, opts)
	if err != nil {
		fatal(err)
	}

	// Ring membership. The forwarder hooks into the engine itself, so
	// singles, batches and streams all route identically.
	var node *cluster.Node
	if *peers != "" {
		if *self == "" {
			fatal(errors.New("-peers requires -self (this replica's own address)"))
		}
		node, err = cluster.New(cluster.Config{
			Self:            *self,
			Peers:           strings.Split(*peers, ","),
			Timeout:         *peerTimeout,
			DisableFallback: *peerStrict,
		})
		if err != nil {
			fatal(err)
		}
		eng.SetForwarder(node.Forwarder(eng))
		log.Printf("ripd: ring of %d replicas (self %s)", len(node.Peers()), node.Self())
	}

	// Periodic snapshots; the saver's last-save time feeds /readyz and
	// rip_snapshot_age_seconds.
	var saver *snapshot.Saver
	var lastSnap func() time.Time
	if *cacheSave != "" {
		saver = snapshot.NewSaver(*cacheSave, *saveInterval, eng, log.Printf)
		lastSnap = saver.LastSave
	}

	srv := server.New(eng, server.Options{
		MaxInFlight:       *maxInFlight,
		RequestTimeout:    *timeout,
		DefaultTargetMult: *target,
		DefaultEps:        *defaultEps,
		DefaultAggressor:  *defaultAgg,
		DefaultScheme:     *defaultSch,
		Cluster:           node,
		LastSnapshot:      lastSnap,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if saver != nil {
		go saver.Run(ctx)
	}

	// Restore in the background: the server answers immediately (cold
	// requests just miss the still-filling cache) while /readyz reports
	// "loading" so balancers prefer warm replicas.
	if *cacheLoad != "" {
		srv.SetReady(false)
		go func() {
			defer srv.SetReady(true)
			st, err := rip.LoadCacheSnapshot(*cacheLoad, eng)
			switch {
			case errors.Is(err, os.ErrNotExist):
				log.Printf("ripd: no snapshot at %s (cold start)", *cacheLoad)
			case err != nil:
				log.Printf("ripd: snapshot restore failed (cold start): %v", err)
			default:
				log.Printf("ripd: restored %d cache entries (%d nodes, %d skipped) from %s",
					st.Entries, st.Nodes, st.SkippedNodes, *cacheLoad)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("ripd: serving %s (default %s) on %s (%d workers, %d in-flight max, timeout %s)",
		strings.Join(eng.Names(), ", "), eng.Default(), *addr, eng.Workers(), srv.MaxInFlight(), timeout)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Drain: refuse new work immediately, let admitted requests finish.
	log.Printf("ripd: shutdown signal — draining in-flight requests (budget %s)", grace)
	srv.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	// One final snapshot after the drain, so the image includes every
	// request that finished during it. (Saver.Run also snapshots on ctx
	// cancellation, but that races the drain; this one is ordered.)
	if saver != nil {
		if err := saver.SaveNow(); err == nil {
			log.Printf("ripd: final snapshot written to %s", *cacheSave)
		}
	}
	st := eng.CacheStats()
	log.Printf("ripd: stopped — caches served %d hits / %d misses / %d rejected (%d entries)",
		st.Hits, st.Misses, st.Rejected, st.Entries)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ripd:", err)
	os.Exit(1)
}
