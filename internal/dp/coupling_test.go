package dp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rip-eda/rip/internal/delay"
	"github.com/rip-eda/rip/internal/repeater"
	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/units"
	"github.com/rip-eda/rip/internal/wire"
)

// couplingScenarios enumerates every (aggressor, mode) pair a coupled
// solve accepts.
func couplingScenarios(t *testing.T) []*delay.Coupling {
	t.Helper()
	var out []*delay.Coupling
	for _, agg := range []delay.Aggressor{delay.AggressorWorst, delay.AggressorBest, delay.AggressorQuiet} {
		for _, mode := range []delay.SchemeMode{delay.SchemePlainOnly, delay.SchemeModeStaggered, delay.SchemeModeShielded, delay.SchemeModeAuto} {
			cpl, err := delay.NewCoupling(tech.T180(), agg, mode)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, cpl)
		}
	}
	return out
}

// diffCoupledZeroCc checks a coupled solve of a zero-coupling net against
// the classic solver: identical feasibility, delay, width and assignment,
// bit for bit, with every interval priced plain.
func diffCoupledZeroCc(t *testing.T, name string, got, want Solution) {
	t.Helper()
	if got.Feasible != want.Feasible {
		t.Fatalf("%s: feasible %v, want %v", name, got.Feasible, want.Feasible)
	}
	if !got.Feasible {
		return
	}
	if got.Delay != want.Delay {
		t.Fatalf("%s: delay %.17g != uncoupled %.17g", name, got.Delay, want.Delay)
	}
	if got.TotalWidth != want.TotalWidth {
		t.Fatalf("%s: total width %.17g != uncoupled %.17g", name, got.TotalWidth, want.TotalWidth)
	}
	if len(got.Assignment.Positions) != len(want.Assignment.Positions) {
		t.Fatalf("%s: %d repeaters, uncoupled %d", name, len(got.Assignment.Positions), len(want.Assignment.Positions))
	}
	for i := range got.Assignment.Positions {
		if got.Assignment.Positions[i] != want.Assignment.Positions[i] ||
			got.Assignment.Widths[i] != want.Assignment.Widths[i] {
			t.Fatalf("%s: repeater %d (%g, %g) != uncoupled (%g, %g)", name, i,
				got.Assignment.Positions[i], got.Assignment.Widths[i],
				want.Assignment.Positions[i], want.Assignment.Widths[i])
		}
	}
	for i, sch := range got.Schemes {
		if sch != delay.SchemePlain {
			t.Fatalf("%s: interval %d chose %s on a zero-coupling net", name, i, delay.SchemeName(sch))
		}
	}
	if got.StaggerLen != 0 || got.ShieldLen != 0 {
		t.Fatalf("%s: nonzero scheme lengths (%g, %g) on a zero-coupling net", name, got.StaggerLen, got.ShieldLen)
	}
}

// TestCoupledZeroCcMatchesUncoupledCorpus is the zero-coupling
// differential oracle on the deterministic corpus: with every segment's
// coupling capacitance zero, a coupled solve under any aggressor and any
// scheme mode must reproduce the classic solver bit for bit — the plain
// scheme's arithmetic is the same expressions, staggered duplicates are
// killed plain-first, and shielded options are strictly dominated. Both
// the bounded solver and the front solver are differenced, with and
// without the ladder.
func TestCoupledZeroCcMatchesUncoupledCorpus(t *testing.T) {
	scens := couplingScenarios(t)
	s, sc := NewSolver(), NewSolver()
	// Fronts ignore Objective/Target, so instances repeated across target
	// multipliers would difference identical fronts; do fronts once per
	// instance name. The aggressor only scales the (zero) coupling terms,
	// so the front sweep fixes aggressor=worst and varies the scheme mode.
	frontDone := map[string]bool{}
	for _, c := range corpusInstances(t) {
		want, wantErr := s.Solve(c.ev, c.opts)
		for _, cpl := range scens {
			// At cc=0 the aggressor only scales zero terms, so non-worst
			// aggressors are the same arithmetic; difference them once
			// (auto mode) and sweep the modes under worst.
			if cpl.Aggressor != delay.AggressorWorst && cpl.Mode != delay.SchemeModeAuto {
				continue
			}
			name := c.name + "/" + cpl.Aggressor.String() + "/" + cpl.Mode.String()
			copts := c.opts
			copts.Coupling = cpl
			got, gotErr := sc.Solve(c.ev, copts)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: error mismatch: %v vs %v", name, gotErr, wantErr)
			}
			if gotErr == nil {
				diffCoupledZeroCc(t, name, got, want)
			}

			if cpl.Aggressor != delay.AggressorWorst {
				continue
			}
			lopts := copts
			lopts.Ladder = true
			lgot, lerr := sc.Solve(c.ev, lopts)
			if (lerr == nil) != (wantErr == nil) {
				t.Fatalf("%s ladder: error mismatch: %v vs %v", name, lerr, wantErr)
			}
			if lerr == nil {
				diffCoupledZeroCc(t, name+"/ladder", lgot, want)
			}
		}

		if frontDone[c.name] {
			continue
		}
		frontDone[c.name] = true
		wf, _, wantFErr := s.SolveFront(c.ev, c.opts)
		for _, cpl := range scens {
			if cpl.Aggressor != delay.AggressorWorst {
				continue
			}
			name := c.name + "/" + cpl.Aggressor.String() + "/" + cpl.Mode.String()
			copts := c.opts
			copts.Coupling = cpl
			gf, _, gotFErr := sc.SolveFront(c.ev, copts)
			if (gotFErr == nil) != (wantFErr == nil) {
				t.Fatalf("%s front: error mismatch: %v vs %v", name, gotFErr, wantFErr)
			}
			if gotFErr != nil {
				continue
			}
			if len(gf) != len(wf) {
				t.Fatalf("%s front: %d points, uncoupled %d", name, len(gf), len(wf))
			}
			for i := range gf {
				if gf[i].Delay != wf[i].Delay || gf[i].TotalWidth != wf[i].TotalWidth {
					t.Fatalf("%s front point %d: (%.17g, %.17g) != uncoupled (%.17g, %.17g)",
						name, i, gf[i].Delay, gf[i].TotalWidth, wf[i].Delay, wf[i].TotalWidth)
				}
				for j, sch := range gf[i].Schemes {
					if sch != delay.SchemePlain {
						t.Fatalf("%s front point %d interval %d chose %s on a zero-coupling net",
							name, i, j, delay.SchemeName(sch))
					}
				}
			}
		}
	}
}

// coupledRandomInstance draws a random coupled net + options pair: the
// randomInstance distribution with per-segment coupling densities of the
// same order as the ground capacitance, always on pitch-generated
// candidates (the grid the scheme vector is defined over).
func coupledRandomInstance(tb testing.TB, rng *rand.Rand) (*delay.Evaluator, Options) {
	tb.Helper()
	nseg := 1 + rng.Intn(4)
	segs := make([]wire.Segment, nseg)
	for i := range segs {
		segs[i] = wire.Segment{
			Length:   (0.5 + 2.5*rng.Float64()) * 1e-3,
			ROhmPerM: (4 + rng.Float64()*6) * 1e4,
			CFPerM:   (1.5 + 1.2*rng.Float64()) * 1e-10,
			CcFPerM:  (0.5 + 1.5*rng.Float64()) * 1e-10,
		}
	}
	var zones []wire.Zone
	total := 0.0
	for _, s := range segs {
		total += s.Length
	}
	if rng.Intn(3) == 0 {
		start := total * (0.2 + 0.4*rng.Float64())
		end := start + total*0.2*rng.Float64()
		zones = append(zones, wire.Zone{Start: start, End: end})
	}
	line, err := wire.New(segs, zones)
	if err != nil {
		tb.Fatal(err)
	}
	ev, err := delay.NewEvaluator(&wire.Net{
		Name: "randcc", Line: line,
		DriverWidth:   40 + rng.Float64()*300,
		ReceiverWidth: 20 + rng.Float64()*100,
	}, tech.T180())
	if err != nil {
		tb.Fatal(err)
	}
	nw := 1 + rng.Intn(8)
	ws := make([]float64, nw)
	for i := range ws {
		if rng.Intn(2) == 0 {
			// Coarse grid: duplicates and shared Co·w classes are likely.
			ws[i] = float64(1+rng.Intn(6)) * 60
		} else {
			ws[i] = 10 + rng.Float64()*390
		}
	}
	libr, err := repeater.NewLibrary(ws)
	if err != nil {
		tb.Fatal(err)
	}
	return ev, Options{Library: libr, Pitch: (150 + 400*rng.Float64()) * units.Micron}
}

// TestCoupledZeroCcMatchesUncoupledRandom is the randomized rendering of
// the zero-coupling differential, on the randomInstance distribution
// (whose segments carry no coupling capacitance).
func TestCoupledZeroCcMatchesUncoupledRandom(t *testing.T) {
	trials := 500
	if testing.Short() {
		trials = 100
	}
	scens := couplingScenarios(t)
	rng := rand.New(rand.NewSource(905))
	s, sc := NewSolver(), NewSolver()
	for trial := 0; trial < trials; trial++ {
		ev, opts := randomInstance(t, rng)
		cpl := scens[rng.Intn(len(scens))]
		copts := opts
		copts.Coupling = cpl
		want, wantErr := s.Solve(ev, opts)
		got, gotErr := sc.Solve(ev, copts)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		diffCoupledZeroCc(t, "trial", got, want)
	}
}

// TestCoupledCostDominatesUncoupled pins the other half of figure 9's
// premise: crosstalk only costs. At the same absolute budget, the
// coupled optimum — even with shielding or staggering on the menu —
// never beats the classic ground-only optimum, because every coupled
// candidate's delay dominates its uncoupled twin's (MF ≥ 0, shields
// restore the ground-only delay but pay ShieldUPerM in the objective).
// "Shielded power ≥ unshielded power at equal budget", as a property
// over random coupled nets.
func TestCoupledCostDominatesUncoupled(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 30
	}
	tc := tech.T180()
	rng := rand.New(rand.NewSource(907))
	s, sc := NewSolver(), NewSolver()
	for trial := 0; trial < trials; trial++ {
		ev, opts := coupledRandomInstance(t, rng)
		// The budget must be feasible uncoupled (it is: coupled τmin
		// dominates uncoupled τmin), and may or may not be coupled-feasible.
		uncTMin, err := s.MinimumDelay(ev, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		target := uncTMin * (1.1 + rng.Float64())
		uopts := opts
		uopts.Objective = MinPower
		uopts.Target = target
		unc, err := s.Solve(ev, uopts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !unc.Feasible {
			continue
		}
		for _, mode := range []delay.SchemeMode{delay.SchemePlainOnly, delay.SchemeModeStaggered, delay.SchemeModeShielded, delay.SchemeModeAuto} {
			cpl, err := delay.NewCoupling(tc, delay.AggressorWorst, mode)
			if err != nil {
				t.Fatal(err)
			}
			copts := uopts
			copts.Coupling = cpl
			sol, err := sc.Solve(ev, copts)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode, err)
			}
			if !sol.Feasible {
				continue
			}
			if sol.Cost < unc.TotalWidth*(1-fpSlack) {
				t.Fatalf("trial %d: coupled %s cost %g beats uncoupled width %g at the same budget",
					trial, mode, sol.Cost, unc.TotalWidth)
			}
		}
	}
}

// TestCoupledSchemeLattice pins the structural property of the allowed
// scheme sets on random coupled nets: every mode's allowed set contains
// plain and auto contains everything, so widening the set can only
// improve the optimum — minimum delay never rises, and at a fixed budget
// the DP cost never rises (in particular "staggered ≤ pessimistic",
// figure 9's premise). It also pins the aggressor ordering best ≤ quiet
// ≤ worst for plain wires and the shielding cost accounting.
func TestCoupledSchemeLattice(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 30
	}
	tc := tech.T180()
	rng := rand.New(rand.NewSource(906))
	s := NewSolver()
	newCpl := func(agg delay.Aggressor, mode delay.SchemeMode) *delay.Coupling {
		cpl, err := delay.NewCoupling(tc, agg, mode)
		if err != nil {
			t.Fatal(err)
		}
		return cpl
	}
	for trial := 0; trial < trials; trial++ {
		ev, opts := coupledRandomInstance(t, rng)

		// Aggressor ordering on plain wires: MF 0 ≤ 1 ≤ 2.
		tmin := map[delay.Aggressor]float64{}
		for _, agg := range []delay.Aggressor{delay.AggressorWorst, delay.AggressorBest, delay.AggressorQuiet} {
			copts := opts
			copts.Coupling = newCpl(agg, delay.SchemePlainOnly)
			d, err := s.MinimumDelay(ev, copts)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, agg, err)
			}
			tmin[agg] = d
		}
		if !(tmin[delay.AggressorBest] <= tmin[delay.AggressorQuiet]*(1+fpSlack)) ||
			!(tmin[delay.AggressorQuiet] <= tmin[delay.AggressorWorst]*(1+fpSlack)) {
			t.Fatalf("trial %d: aggressor τmin ordering violated: best %g quiet %g worst %g",
				trial, tmin[delay.AggressorBest], tmin[delay.AggressorQuiet], tmin[delay.AggressorWorst])
		}

		// Scheme-set lattice under the pessimistic aggressor.
		mode := func(m delay.SchemeMode) Options {
			copts := opts
			copts.Coupling = newCpl(delay.AggressorWorst, m)
			return copts
		}
		dPlain, err := s.MinimumDelay(ev, mode(delay.SchemePlainOnly))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, m := range []delay.SchemeMode{delay.SchemeModeStaggered, delay.SchemeModeShielded, delay.SchemeModeAuto} {
			d, err := s.MinimumDelay(ev, mode(m))
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, m, err)
			}
			if !(d <= dPlain*(1+fpSlack)) {
				t.Fatalf("trial %d: τmin under %s mode %g exceeds plain-only %g", trial, m, d, dPlain)
			}
		}

		// Fixed budget: superset cost never rises, and a solution's Cost
		// decomposes into repeater width plus priced shielding.
		target := dPlain * (1.05 + rng.Float64())
		costs := map[delay.SchemeMode]Solution{}
		for _, m := range []delay.SchemeMode{delay.SchemePlainOnly, delay.SchemeModeStaggered, delay.SchemeModeShielded, delay.SchemeModeAuto} {
			copts := mode(m)
			copts.Objective = MinPower
			copts.Target = target
			sol, err := s.Solve(ev, copts)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, m, err)
			}
			costs[m] = sol
			if !sol.Feasible {
				continue
			}
			wantCost := sol.TotalWidth + tc.ShieldUPerM*sol.ShieldLen
			if math.Abs(sol.Cost-wantCost) > fpSlack*(1+math.Abs(wantCost)) {
				t.Fatalf("trial %d %s: cost %g != width %g + shield %g", trial, m, sol.Cost, sol.TotalWidth, tc.ShieldUPerM*sol.ShieldLen)
			}
			if sol.ShieldLen > 0 && m != delay.SchemeModeShielded && m != delay.SchemeModeAuto {
				t.Fatalf("trial %d %s: shielding used under a mode that forbids it", trial, m)
			}
			if sol.StaggerLen > 0 && m != delay.SchemeModeStaggered && m != delay.SchemeModeAuto {
				t.Fatalf("trial %d %s: staggering used under a mode that forbids it", trial, m)
			}
		}
		plain := costs[delay.SchemePlainOnly]
		for _, m := range []delay.SchemeMode{delay.SchemeModeStaggered, delay.SchemeModeShielded, delay.SchemeModeAuto} {
			sol := costs[m]
			if plain.Feasible && !sol.Feasible {
				t.Fatalf("trial %d: plain-only feasible but %s mode is not", trial, m)
			}
			if plain.Feasible && sol.Cost > plain.Cost*(1+fpSlack) {
				t.Fatalf("trial %d: %s mode cost %g exceeds plain-only %g", trial, m, sol.Cost, plain.Cost)
			}
		}
		auto := costs[delay.SchemeModeAuto]
		for _, m := range []delay.SchemeMode{delay.SchemeModeStaggered, delay.SchemeModeShielded} {
			if costs[m].Feasible && auto.Cost > costs[m].Cost*(1+fpSlack) {
				t.Fatalf("trial %d: auto cost %g exceeds %s mode %g", trial, auto.Cost, m, costs[m].Cost)
			}
		}
	}
}

// TestCoupledDelayMatchesCoupledTotal re-evaluates every coupled DP
// solution through the independent delay.CoupledTotal walk: the solver's
// incrementally accumulated delay and the from-scratch evaluation of its
// (assignment, schemes) pair must agree to rounding.
func TestCoupledDelayMatchesCoupledTotal(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 50
	}
	scens := couplingScenarios(t)
	rng := rand.New(rand.NewSource(907))
	s := NewSolver()
	for trial := 0; trial < trials; trial++ {
		ev, opts := coupledRandomInstance(t, rng)
		cpl := scens[rng.Intn(len(scens))]
		opts.Coupling = cpl
		if rng.Intn(2) == 0 {
			opts.Objective = MinDelay
		} else {
			opts.Objective = MinPower
			tmin, err := s.MinimumDelay(ev, opts)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			opts.Target = tmin * (1.02 + rng.Float64())
		}
		sol, err := s.Solve(ev, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !sol.Feasible {
			continue
		}
		pts := append([]float64{0}, ev.Line.AppendLegalPositions(nil, opts.Pitch)...)
		pts = append(pts, ev.Line.Length())
		if len(sol.Schemes) != len(pts)-1 {
			t.Fatalf("trial %d: %d schemes for %d grid intervals", trial, len(sol.Schemes), len(pts)-1)
		}
		d, err := ev.CoupledTotal(pts, sol.Schemes, cpl, sol.Assignment)
		if err != nil {
			t.Fatalf("trial %d: CoupledTotal: %v", trial, err)
		}
		if math.Abs(d-sol.Delay) > fpSlack*sol.Delay {
			t.Fatalf("trial %d: DP delay %.17g but CoupledTotal %.17g", trial, sol.Delay, d)
		}
		if opts.Objective == MinPower && sol.Delay > opts.Target {
			t.Fatalf("trial %d: delay %g exceeds target %g", trial, sol.Delay, opts.Target)
		}
		gotStag, gotShield := delay.SchemeLengths(pts, sol.Schemes)
		if gotStag != sol.StaggerLen || gotShield != sol.ShieldLen {
			t.Fatalf("trial %d: scheme lengths (%g, %g) != reported (%g, %g)",
				trial, gotStag, gotShield, sol.StaggerLen, sol.ShieldLen)
		}
	}
}

// TestCoupledFrontAnswersBudgets pins the front/bounded equivalence under
// coupling: Front.At(T) must select the same (delay, cost, schemes) a
// fresh bounded MinPower solve at Target=T picks, for targets swept
// across the front's range — the contract the engine's front-native cache
// rides on, now with the scheme dimension in play.
func TestCoupledFrontAnswersBudgets(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	scens := couplingScenarios(t)
	rng := rand.New(rand.NewSource(908))
	s, sb := NewSolver(), NewSolver()
	for trial := 0; trial < trials; trial++ {
		ev, opts := coupledRandomInstance(t, rng)
		cpl := scens[rng.Intn(len(scens))]
		opts.Coupling = cpl
		front, _, err := s.SolveFront(ev, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(front) == 0 {
			continue
		}
		for i := range front {
			if i > 0 && !(front[i].Delay > front[i-1].Delay && front[i].Cost < front[i-1].Cost) {
				t.Fatalf("trial %d: front not a strict skyline at %d", trial, i)
			}
		}
		lo, hi := front[0].Delay, front[len(front)-1].Delay
		for k := 0; k < 8; k++ {
			target := lo + (hi-lo)*rng.Float64()*1.1
			idx, ok := front.At(target)
			bopts := opts
			bopts.Objective = MinPower
			bopts.Target = target
			sol, err := sb.Solve(ev, bopts)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if ok != sol.Feasible {
				t.Fatalf("trial %d target %g: front ok=%v but bounded feasible=%v", trial, target, ok, sol.Feasible)
			}
			if !ok {
				continue
			}
			p := front[idx]
			if p.Delay != sol.Delay || p.Cost != sol.Cost {
				t.Fatalf("trial %d target %g: front (%.17g, %.17g) != bounded (%.17g, %.17g)",
					trial, target, p.Delay, p.Cost, sol.Delay, sol.Cost)
			}
			if len(p.Schemes) != len(sol.Schemes) {
				t.Fatalf("trial %d target %g: %d front schemes, %d bounded", trial, target, len(p.Schemes), len(sol.Schemes))
			}
			for j := range p.Schemes {
				if p.Schemes[j] != sol.Schemes[j] {
					t.Fatalf("trial %d target %g interval %d: front %s != bounded %s",
						trial, target, j, delay.SchemeName(p.Schemes[j]), delay.SchemeName(sol.Schemes[j]))
				}
			}
		}
	}
}
