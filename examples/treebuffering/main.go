// Tree buffering: the paper's §7 future-work extension in action. Builds a
// random 8-sink interconnect tree and runs the power-aware van Ginneken
// dynamic program: minimum total buffer width such that every sink meets
// its required arrival time.
//
//	go run ./examples/treebuffering
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	rip "github.com/rip-eda/rip"
	"github.com/rip-eda/rip/internal/tree"
)

func main() {
	tech := rip.T180()
	cfg, err := tree.DefaultGenConfig(tech)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Sinks = 8
	rng := rand.New(rand.NewSource(2005))
	tr, err := tree.Generate(rng, cfg)
	if err != nil {
		log.Fatal(err)
	}

	lib, err := rip.UniformLibrary(60, 60, 5) // {60,120,...,300}u
	if err != nil {
		log.Fatal(err)
	}
	const driver = 240.0

	// First: how fast can the tree go at all? (classic max-slack van
	// Ginneken), then back off and minimize power at a RAT chosen between
	// the unbuffered and the fully buffered arrival — tight enough that
	// buffering is mandatory, loose enough to leave power headroom.
	fastest, err := tree.Insert(tr, tree.Options{Library: lib, Tech: tech, DriverWidth: driver, MaxSlack: true})
	if err != nil {
		log.Fatal(err)
	}
	unbufSlack, err := tr.Evaluate(nil, driver, tech.Rs, tech.Co, tech.Cp)
	if err != nil {
		log.Fatal(err)
	}
	arrivalUnbuf := cfg.RAT - unbufSlack
	arrivalBest := cfg.RAT - fastest.Slack
	rat := arrivalBest + 0.4*(arrivalUnbuf-arrivalBest)
	for _, s := range tr.Sinks() {
		s.SinkRAT = rat
	}
	fmt.Printf("tree: %d nodes, %d sinks, %d buffer sites\n",
		tr.NumNodes(), len(tr.Sinks()), len(tr.BufferSites()))
	fmt.Printf("arrival: unbuffered %.1f ps, best buffered %.1f ps → choosing RAT %.1f ps\n",
		arrivalUnbuf*1e12, arrivalBest*1e12, rat*1e12)
	fmt.Printf("max-slack buffering: %.0fu of buffers (%d buffers)\n",
		fastest.TotalWidth, len(fastest.Buffers))

	// Now the power objective: meet the RAT with minimum total width.
	minPow, err := tree.Insert(tr, tree.Options{Library: lib, Tech: tech, DriverWidth: driver})
	if err != nil {
		log.Fatal(err)
	}
	if !minPow.Feasible {
		log.Fatal("RAT infeasible even with buffering; loosen cfg.RAT")
	}
	fmt.Printf("min-power buffering:    slack %.1f ps using %.0fu (%d buffers) — %.0f%% less width than max-slack\n",
		minPow.Slack*1e12, minPow.TotalWidth, len(minPow.Buffers),
		100*(fastest.TotalWidth-minPow.TotalWidth)/fastest.TotalWidth)

	ids := make([]int, 0, len(minPow.Buffers))
	for id := range minPow.Buffers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  buffer at node %d: width %.0fu\n", id, minPow.Buffers[id])
	}

	// Verify with the independent evaluator (the DP and the evaluator are
	// separate implementations — agreeing is a real check).
	slack, err := tr.Evaluate(minPow.Buffers, driver, tech.Rs, tech.Co, tech.Cp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("independent evaluation: worst slack %.1f ps ✓\n", slack*1e12)
}
