package tree

import (
	"fmt"
	"math/rand"

	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/units"
)

// GenConfig describes the random tree distribution used by tests, examples
// and the tree ablation bench.
type GenConfig struct {
	// Sinks is the number of sink leaves (≥ 1).
	Sinks int
	// EdgeLenMin/Max bound each edge's wire length in meters; edge RC
	// densities come from the layer.
	EdgeLenMin, EdgeLenMax float64
	// Layer supplies the wire RC densities.
	Layer tech.Layer
	// SinkCapMin/Max bound the sink loads in farads.
	SinkCapMin, SinkCapMax float64
	// RAT is the required arrival time applied to every sink.
	RAT float64
	// BufferEveryNode marks all internal nodes as buffer sites when true;
	// otherwise only branch points.
	BufferEveryNode bool
}

// DefaultGenConfig returns a plausible global-net distribution on the
// node's metal4: 8 sinks, 0.4–1.2 mm edges, 20–80 fF sinks.
func DefaultGenConfig(t *tech.Technology) (GenConfig, error) {
	m4, err := t.Layer("metal4")
	if err != nil {
		return GenConfig{}, err
	}
	return GenConfig{
		Sinks:           8,
		EdgeLenMin:      400 * units.Micron,
		EdgeLenMax:      1200 * units.Micron,
		Layer:           m4,
		SinkCapMin:      20 * units.FemtoFarad,
		SinkCapMax:      80 * units.FemtoFarad,
		RAT:             1.5 * units.NanoSecond,
		BufferEveryNode: true,
	}, nil
}

// Generate builds a random binary tree with the configured sink count.
// Topology: start from a root, repeatedly split a random leaf until the
// sink budget is reached, then attach sink parameters to the leaves.
func Generate(rng *rand.Rand, cfg GenConfig) (*Tree, error) {
	if cfg.Sinks < 1 {
		return nil, fmt.Errorf("tree: need at least one sink, got %d", cfg.Sinks)
	}
	if !(cfg.EdgeLenMin > 0) || cfg.EdgeLenMax < cfg.EdgeLenMin {
		return nil, fmt.Errorf("tree: bad edge length range [%g, %g]", cfg.EdgeLenMin, cfg.EdgeLenMax)
	}
	if !(cfg.SinkCapMin > 0) || cfg.SinkCapMax < cfg.SinkCapMin {
		return nil, fmt.Errorf("tree: bad sink cap range [%g, %g]", cfg.SinkCapMin, cfg.SinkCapMax)
	}
	nextID := 0
	newNode := func() *Node {
		n := &Node{ID: nextID}
		nextID++
		return n
	}
	edge := func(n *Node) {
		l := cfg.EdgeLenMin + rng.Float64()*(cfg.EdgeLenMax-cfg.EdgeLenMin)
		n.EdgeR = l * cfg.Layer.ROhmPerM
		n.EdgeC = l * cfg.Layer.CFPerM
	}
	root := newNode()
	leaves := []*Node{}
	// The root drives one initial child to keep the driver stage explicit.
	first := newNode()
	edge(first)
	root.Children = []*Node{first}
	leaves = append(leaves, first)
	for len(leaves) < cfg.Sinks {
		// Split a random leaf into two children.
		i := rng.Intn(len(leaves))
		leaf := leaves[i]
		a, b := newNode(), newNode()
		edge(a)
		edge(b)
		leaf.Children = []*Node{a, b}
		leaves[i] = a
		leaves = append(leaves, b)
	}
	for _, leaf := range leaves {
		leaf.SinkCap = cfg.SinkCapMin + rng.Float64()*(cfg.SinkCapMax-cfg.SinkCapMin)
		leaf.SinkRAT = cfg.RAT
	}
	// Buffer sites: internal nodes (never sinks; the root hosts the fixed
	// driver so it is not a site either).
	var mark func(n *Node)
	mark = func(n *Node) {
		for _, c := range n.Children {
			mark(c)
		}
		if n.SinkCap == 0 && n != root {
			n.BufferSite = cfg.BufferEveryNode || len(n.Children) > 1
		}
	}
	mark(root)
	return New(root)
}
