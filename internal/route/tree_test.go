package route

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rip-eda/rip/internal/repeater"
	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/tree"
	"github.com/rip-eda/rip/internal/units"
)

func sinksAt(pins []Pin) []TreeSink {
	out := make([]TreeSink, len(pins))
	for i, p := range pins {
		out[i] = TreeSink{Pin: p, CapF: 40 * units.FemtoFarad, RAT: 2 * units.NanoSecond}
	}
	return out
}

func TestRouteTreeBasicStructure(t *testing.T) {
	f := die(t)
	driver := Pin{X: 1e-3, Y: 1e-3}
	sinks := sinksAt([]Pin{
		{X: 10e-3, Y: 4e-3},
		{X: 12e-3, Y: 12e-3},
		{X: 4e-3, Y: 9e-3},
	})
	tr, err := RouteTree(f, driver, sinks, cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Sinks()); got != 3 {
		t.Fatalf("%d sinks, want 3", got)
	}
	// Every sink keeps its load and RAT.
	for _, s := range tr.Sinks() {
		if s.SinkCap != 40*units.FemtoFarad || s.SinkRAT != 2*units.NanoSecond {
			t.Errorf("sink parameters lost: %+v", s)
		}
	}
	// Total wire capacitance is at least the direct-line lower bound for
	// the farthest sink and at most the sum of all star paths.
	sumStar := 0.0
	for _, s := range sinks {
		d := math.Abs(s.Pin.X-driver.X) + math.Abs(s.Pin.Y-driver.Y)
		sumStar += d
	}
	maxC := math.Max(cfg(t).HLayer.CFPerM, cfg(t).VLayer.CFPerM)
	if tot := tr.TotalEdgeC(); tot > sumStar*maxC*1.001 {
		t.Errorf("tree wire cap %g exceeds star upper bound %g — sharing failed", tot, sumStar*maxC)
	}
}

func TestRouteTreeSharingBeatsStar(t *testing.T) {
	// Two far sinks close to each other: the greedy heuristic should share
	// the trunk, making total wirelength well below the star topology.
	f := die(t)
	driver := Pin{X: 1e-3, Y: 1e-3}
	sinks := sinksAt([]Pin{
		{X: 15e-3, Y: 14e-3},
		{X: 15.5e-3, Y: 14.5e-3},
	})
	tr, err := RouteTree(f, driver, sinks, cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(t)
	minC := math.Min(c.HLayer.CFPerM, c.VLayer.CFPerM)
	star := (27.5e-3 + 28.5e-3) * minC // both full paths, lower cap bound
	if tot := tr.TotalEdgeC(); tot > star*0.75 {
		t.Errorf("expected trunk sharing: tree cap %g vs star bound %g", tot, star)
	}
}

func TestRouteTreeBufferSitesAvoidMacros(t *testing.T) {
	// A corner that lands inside a macro must not be a buffer site.
	f := die(t, Rect{X1: 9e-3, Y1: 0.5e-3, X2: 12e-3, Y2: 3e-3})
	driver := Pin{X: 1e-3, Y: 1e-3}
	// L-route corner at (10.5e-3, 1e-3) is inside the macro.
	sinks := sinksAt([]Pin{{X: 10.5e-3, Y: 8e-3}})
	tr, err := RouteTree(f, driver, sinks, cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if sites := tr.BufferSites(); len(sites) != 0 {
		t.Errorf("corner inside macro should not be a buffer site, got %d sites", len(sites))
	}
	// Same route without the macro: the corner is a site.
	clean, err := RouteTree(die(t), driver, sinks, cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if sites := clean.BufferSites(); len(sites) != 1 {
		t.Errorf("expected exactly the corner site, got %d", len(sites))
	}
}

func TestRouteTreeValidation(t *testing.T) {
	f := die(t)
	c := cfg(t)
	if _, err := RouteTree(f, Pin{X: 1, Y: 1}, nil, c); err == nil {
		t.Error("no sinks should fail")
	}
	if _, err := RouteTree(f, Pin{X: -1, Y: 0}, sinksAt([]Pin{{X: 1e-3, Y: 1e-3}}), c); err == nil {
		t.Error("driver off die should fail")
	}
	bad := sinksAt([]Pin{{X: 1e-3, Y: 1e-3}})
	bad[0].CapF = 0
	if _, err := RouteTree(f, Pin{X: 2e-3, Y: 2e-3}, bad, c); err == nil {
		t.Error("zero sink cap should fail")
	}
}

func TestRouteTreeAlignedAndCoincidentSinks(t *testing.T) {
	f := die(t)
	driver := Pin{X: 5e-3, Y: 5e-3}
	sinks := sinksAt([]Pin{
		{X: 12e-3, Y: 5e-3}, // horizontally aligned: no corner
		{X: 5e-3, Y: 11e-3}, // vertically aligned: no corner
	})
	tr, err := RouteTree(f, driver, sinks, cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Sinks()); got != 2 {
		t.Fatalf("%d sinks, want 2", got)
	}
}

func TestRoutedTreeSolvesWithHybrid(t *testing.T) {
	// End to end: geometry → tree → tree-RIP.
	f := die(t, Rect{X1: 7e-3, Y1: 6e-3, X2: 11e-3, Y2: 10e-3})
	tt := tech.T180()
	driver := Pin{X: 0.5e-3, Y: 0.5e-3}
	rng := rand.New(rand.NewSource(3))
	var pins []Pin
	for i := 0; i < 6; i++ {
		pins = append(pins, Pin{X: 4e-3 + rng.Float64()*15e-3, Y: 4e-3 + rng.Float64()*11e-3})
	}
	sinks := sinksAt(pins)
	tr, err := RouteTree(f, driver, sinks, cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := repeater.Range(10, 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	opts := tree.Options{Library: lib, Tech: tt, DriverWidth: 240}
	// Find a demanding-but-feasible RAT.
	best, err := tree.Insert(tr, tree.Options{Library: lib, Tech: tt, DriverWidth: 240, MaxSlack: true})
	if err != nil {
		t.Fatal(err)
	}
	unbuf, err := tr.Evaluate(nil, 240, tt.Rs, tt.Co, tt.Cp)
	if err != nil {
		t.Fatal(err)
	}
	arrBest := 2*units.NanoSecond - best.Slack
	arrUnbuf := 2*units.NanoSecond - unbuf
	rat := arrBest + 0.4*(arrUnbuf-arrBest)
	for _, s := range tr.Sinks() {
		s.SinkRAT = rat
	}
	res, err := tree.InsertHybrid(tr, opts, tree.HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Feasible {
		t.Fatal("routed tree should be buffereable at a mid RAT")
	}
	slack, err := tr.Evaluate(res.Solution.Buffers, 240, tt.Rs, tt.Co, tt.Cp)
	if err != nil {
		t.Fatal(err)
	}
	if slack < -1e-15 {
		t.Errorf("hybrid placement violates timing on the routed tree: %g", slack)
	}
}
