package tree

import (
	"math/rand"
	"testing"

	"github.com/rip-eda/rip/internal/repeater"
	"github.com/rip-eda/rip/internal/tech"
)

// hybridFixture builds a random tree with a RAT that requires buffering
// but is reachable (midway between unbuffered and best-buffered arrival).
func hybridFixture(t *testing.T, seed int64, sinks int) (*Tree, Options) {
	t.Helper()
	tt := tech.T180()
	cfg, err := DefaultGenConfig(tt)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sinks = sinks
	rng := rand.New(rand.NewSource(seed))
	tr, err := Generate(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rich, err := repeater.Range(10, 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Library: rich, Tech: tt, DriverWidth: 240}
	best, err := Insert(tr, Options{Library: rich, Tech: tt, DriverWidth: 240, MaxSlack: true})
	if err != nil {
		t.Fatal(err)
	}
	unbuf, err := tr.Evaluate(nil, 240, tt.Rs, tt.Co, tt.Cp)
	if err != nil {
		t.Fatal(err)
	}
	arrUnbuf := cfg.RAT - unbuf
	arrBest := cfg.RAT - best.Slack
	rat := arrBest + 0.35*(arrUnbuf-arrBest)
	for _, s := range tr.Sinks() {
		s.SinkRAT = rat
	}
	return tr, opts
}

func TestHybridNeverWorseThanCoarse(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		tr, opts := hybridFixture(t, seed, 6)
		res, err := InsertHybrid(tr, opts, HybridConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Solution.Feasible {
			if res.Coarse.Feasible {
				t.Fatalf("seed %d: hybrid infeasible but coarse feasible", seed)
			}
			continue
		}
		if res.Coarse.Feasible && res.Solution.TotalWidth > res.Coarse.TotalWidth+1e-9 {
			t.Errorf("seed %d: hybrid (%g) worse than coarse (%g)",
				seed, res.Solution.TotalWidth, res.Coarse.TotalWidth)
		}
		// Independent feasibility check.
		tt := opts.Tech
		slack, err := tr.Evaluate(res.Solution.Buffers, opts.DriverWidth, tt.Rs, tt.Co, tt.Cp)
		if err != nil {
			t.Fatal(err)
		}
		if slack < -1e-15 {
			t.Errorf("seed %d: hybrid placement violates timing (slack %g)", seed, slack)
		}
	}
}

func TestHybridApproachesFineDP(t *testing.T) {
	// The hybrid should land within a modest factor of the expensive
	// fine-grained DP while generating far fewer DP options.
	var hybridSum, fineSum float64
	var hybridOpts, fineOpts int
	fineLib, err := repeater.Range(10, 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{11, 12, 13} {
		tr, opts := hybridFixture(t, seed, 6)
		res, err := InsertHybrid(tr, opts, HybridConfig{})
		if err != nil {
			t.Fatal(err)
		}
		fOpts := opts
		fOpts.Library = fineLib
		fine, err := Insert(tr, fOpts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solution.Feasible || !fine.Feasible {
			continue
		}
		hybridSum += res.Solution.TotalWidth
		fineSum += fine.TotalWidth
		hybridOpts += res.Coarse.Stats.Generated + res.Final.Stats.Generated
		fineOpts += fine.Stats.Generated
	}
	if fineSum == 0 {
		t.Skip("no comparable instances")
	}
	if hybridSum > fineSum*1.25 {
		t.Errorf("hybrid total %g more than 25%% worse than fine DP %g", hybridSum, fineSum)
	}
	if hybridOpts >= fineOpts {
		t.Errorf("hybrid should do less DP work: %d vs %d options", hybridOpts, fineOpts)
	}
}

func TestHybridRefinementShrinksWidths(t *testing.T) {
	tr, opts := hybridFixture(t, 21, 7)
	res, err := InsertHybrid(tr, opts, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coarse.Feasible || len(res.Continuous) == 0 {
		t.Skip("coarse phase empty")
	}
	var contSum float64
	for _, w := range res.Continuous {
		contSum += w
	}
	if contSum > res.Coarse.TotalWidth+1e-9 {
		t.Errorf("continuous refinement (%g) should not exceed coarse widths (%g)",
			contSum, res.Coarse.TotalWidth)
	}
	// The concise library must bracket the continuous widths.
	for _, w := range res.Continuous {
		if w >= 10 && w <= 400 {
			found := false
			for _, lw := range res.Library.Widths() {
				if lw >= w {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no library width ≥ continuous %g", w)
			}
		}
	}
}

func TestHybridRejectsMaxSlack(t *testing.T) {
	tr, opts := hybridFixture(t, 31, 4)
	opts.MaxSlack = true
	if _, err := InsertHybrid(tr, opts, HybridConfig{}); err == nil {
		t.Error("MaxSlack should be rejected")
	}
}

func TestHybridInfeasibleRAT(t *testing.T) {
	tr, opts := hybridFixture(t, 41, 4)
	for _, s := range tr.Sinks() {
		s.SinkRAT = 1e-15
	}
	res, err := InsertHybrid(tr, opts, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Feasible {
		t.Error("1 fs RAT should be infeasible")
	}
}

func TestHybridLooseRATNoBuffers(t *testing.T) {
	tr, opts := hybridFixture(t, 51, 4)
	for _, s := range tr.Sinks() {
		s.SinkRAT = 1 // a full second
	}
	res, err := InsertHybrid(tr, opts, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Feasible || len(res.Solution.Buffers) != 0 {
		t.Errorf("loose RAT should need no buffers: %+v", res.Solution)
	}
}

func TestHybridDeterminism(t *testing.T) {
	tr, opts := hybridFixture(t, 61, 6)
	a, err := InsertHybrid(tr, opts, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := InsertHybrid(tr, opts, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Solution.TotalWidth != b.Solution.TotalWidth || a.Picked != b.Picked {
		t.Error("hybrid is not deterministic")
	}
}
