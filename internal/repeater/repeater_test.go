package repeater

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformPaperLibraries(t *testing.T) {
	// The coarse RIP library: {80,160,240,320,400}u.
	coarse, err := Uniform(80, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{80, 160, 240, 320, 400}
	got := coarse.Widths()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("coarse[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Table 1 baseline, g = 40u: {10,50,...,370}u.
	base, err := Uniform(10, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if base.Min() != 10 || base.Max() != 370 || base.Size() != 10 {
		t.Errorf("baseline lib = %v", base.Widths())
	}
}

func TestRange(t *testing.T) {
	// Table 2: range (10u, 400u), gDP = 40u → 10 entries 10,50,...,370?
	// No: Range is inclusive of max when it lands on the grid; with min 10
	// step 40 the last grid point ≤ 400 is 370.
	lib, err := Range(10, 400, 40)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Size() != 10 || lib.Max() != 370 {
		t.Errorf("Range(10,400,40) = %v", lib.Widths())
	}
	lib, err = Range(10, 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Size() != 40 || lib.Max() != 400 {
		t.Errorf("Range(10,400,10) size=%d max=%g", lib.Size(), lib.Max())
	}
	if _, err := Range(10, 5, 10); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestNewLibraryValidation(t *testing.T) {
	if _, err := NewLibrary(nil); err == nil {
		t.Error("empty library should fail")
	}
	if _, err := NewLibrary([]float64{10, -5}); err == nil {
		t.Error("negative width should fail")
	}
	if _, err := NewLibrary([]float64{math.NaN()}); err == nil {
		t.Error("NaN width should fail")
	}
	lib, err := NewLibrary([]float64{40, 10, 40, 20})
	if err != nil {
		t.Fatal(err)
	}
	got := lib.Widths()
	want := []float64{10, 20, 40}
	if len(got) != len(want) {
		t.Fatalf("dedup failed: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("widths[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestConcise(t *testing.T) {
	// REFINE widths snapped to the enclosing 10u grid points, clamped into
	// [10, 400]: 87.3→{80,90}, 152.9/152.1→{150,160}, 3→10, 521→400.
	lib, err := Concise([]float64{87.3, 152.9, 152.1, 3.0, 521.0}, 10, 10, 400)
	if err != nil {
		t.Fatal(err)
	}
	got := lib.Widths()
	want := []float64{10, 80, 90, 150, 160, 400}
	if len(got) != len(want) {
		t.Fatalf("Concise = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Concise[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := Concise(nil, 10, 10, 400); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Concise([]float64{10}, 0, 10, 400); err == nil {
		t.Error("zero granularity should fail")
	}
}

func TestConciseContainsEnclosingNeighbors(t *testing.T) {
	// The feasibility guarantee: for every input width inside the clamp
	// range, the library contains a width ≥ it and a width ≤ it.
	in := []float64{33.7, 24.4, 125.2, 87.5, 390.01}
	lib, err := Concise(in, 10, 10, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range in {
		up, down := false, false
		for _, lw := range lib.Widths() {
			if lw >= w {
				up = true
			}
			if lw <= w {
				down = true
			}
		}
		if !up || !down {
			t.Errorf("width %g lacks enclosing neighbors in %v", w, lib.Widths())
		}
	}
}

func TestRound(t *testing.T) {
	lib, _ := NewLibrary([]float64{10, 20, 40})
	cases := []struct{ in, want float64 }{
		{5, 10}, {10, 10}, {14, 10}, {15, 10}, {16, 20}, {29, 20}, {31, 40}, {100, 40},
	}
	for _, c := range cases {
		if got := lib.Round(c.in); got != c.want {
			t.Errorf("Round(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestRoundPropertyNearest(t *testing.T) {
	lib, _ := Uniform(10, 10, 40)
	f := func(w float64) bool {
		w = math.Abs(math.Mod(w, 500))
		r := lib.Round(w)
		// No library entry may be strictly closer than the returned one.
		for _, cand := range lib.Widths() {
			if math.Abs(cand-w) < math.Abs(r-w)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	lib, _ := Uniform(10, 10, 5)
	if !lib.Contains(30) {
		t.Error("30 should be in the library")
	}
	if lib.Contains(35) {
		t.Error("35 should not be in the library")
	}
	if !lib.Contains(30 + 1e-12) {
		t.Error("tiny float slack should be tolerated")
	}
}

func TestString(t *testing.T) {
	lib, _ := Uniform(80, 80, 2)
	if got := lib.String(); got != "{80u,160u}" {
		t.Errorf("String = %q", got)
	}
}

func TestAppendWidthsMatchesWidths(t *testing.T) {
	l, err := Uniform(10, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := l.Widths()
	got := l.AppendWidths([]float64{999})
	if got[0] != 999 || len(got) != len(want)+1 {
		t.Fatalf("AppendWidths shape wrong: %v", got)
	}
	for i, w := range want {
		if got[i+1] != w {
			t.Fatalf("width %d = %g, want %g", i, got[i+1], w)
		}
	}
}
