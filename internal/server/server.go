// Package server is the network layer over the batch engine: a JSON HTTP
// API (cmd/ripd) that turns the engine's solution cache into a
// cross-request asset. One shared multi-technology engine serves every
// request, so a net solved for one client is a warm cache hit for the
// next — per node: each technology keeps its own cache, and requests
// select a node with an optional "tech" field (empty = the server's
// default). Unknown names are a 400 on /v1/optimize, and a per-line
// error inside batches; both list the served nodes.
//
// Endpoints:
//
//	POST /v1/optimize   one api.Request in, one api.Response out
//	                    (targets_ns sweeps many budgets in one request)
//	POST /v1/batch      JSON array or JSONL stream of api.Request in,
//	                    results in input order, per-net error isolation
//	POST /v1/front      one api.Request in (no budget required), the
//	                    net's whole power–delay Pareto front out
//	POST /v1/bus        one api.BusRequest in (a group of parallel
//	                    tracks in adjacency order), the co-decided
//	                    per-track schemes and group savings out
//	GET  /livez         process liveness: 200 as long as the process
//	                    serves HTTP at all
//	GET  /readyz        traffic readiness: 503 while draining or while
//	                    a cache snapshot is still loading; reports ring
//	                    peers and snapshot age
//	GET  /healthz       readiness alias (kept for existing probes)
//	GET  /metrics       Prometheus text: requests, rejections, in-flight,
//	                    latency histograms, engine cache + front counters,
//	                    cluster forwarding and snapshot gauges
//
// Every failing response carries the structured error envelope (see
// api.ErrorInfo): a stable machine-readable "code" plus a message, with
// the HTTP status derived from the code. 429 and 503 responses carry a
// Retry-After header.
//
// Operational behavior:
//
//   - Admission control: at most Options.MaxInFlight optimize/batch
//     requests run at once; beyond that the server answers 429 with a
//     Retry-After header rather than queuing unboundedly.
//   - Timeouts: Options.RequestTimeout bounds each request via context
//     cancellation threaded through engine.SolveContext, so an expired
//     request stops at the next solver phase boundary instead of
//     occupying a worker indefinitely.
//   - Graceful shutdown: BeginShutdown flips the server into draining
//     mode — new work is refused with 503 (and /readyz fails, so load
//     balancers stop routing here) while requests already admitted run
//     to completion under http.Server.Shutdown.
//   - Clustering: when the engine carries a cluster forwarder, requests
//     whose shapes other replicas own are forwarded there; a request
//     arriving with the cluster.ForwardHeader is answered locally
//     unconditionally, so rings that disagree cannot loop.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rip-eda/rip/internal/api"
	"github.com/rip-eda/rip/internal/cluster"
	"github.com/rip-eda/rip/internal/engine"
)

// Options configures the service layer. The zero value is usable.
type Options struct {
	// MaxInFlight bounds concurrently served optimize/batch requests
	// (default 4× the engine's worker count). Excess requests get 429.
	MaxInFlight int
	// RequestTimeout bounds each request's solving time via context
	// cancellation (default 0: no timeout beyond the client's).
	RequestTimeout time.Duration
	// DefaultTargetMult is applied to requests that carry no budget of
	// their own (default 0: such requests fail per-net).
	DefaultTargetMult float64
	// DefaultEps is the ε relaxation applied to line requests that carry
	// no "eps" of their own (default 0: bit-exact solving). An explicit
	// "eps": 0 in a request always forces exact mode. /v1/front is not
	// defaulted — curve queries stay exact unless the request opts in.
	DefaultEps float64
	// DefaultAggressor / DefaultScheme are the crosstalk scenario applied
	// to line requests that carry no "aggressor" of their own (default "":
	// the classic ground-only model). An explicit "aggressor": "none" in a
	// request always forces the uncoupled model. /v1/front is not defaulted
	// — curve queries stay uncoupled unless the request opts in.
	DefaultAggressor string
	DefaultScheme    string
	// MaxBatchNets caps the nets accepted in one array-bodied batch
	// (default 100000). JSONL bodies stream and are not subject to it.
	MaxBatchNets int
	// MaxBodyBytes caps a request body (default 256 MiB).
	MaxBodyBytes int64
	// Cluster is this replica's ring node, for /readyz peer reporting
	// and /metrics forwarding counters (nil = single-replica). The
	// forwarding hook itself lives on the engine (Multi.SetForwarder).
	Cluster *cluster.Node
	// LastSnapshot reports the time of the last successful cache
	// snapshot (zero time = none); /readyz and /metrics report its age.
	// Nil when snapshotting is off.
	LastSnapshot func() time.Time
}

const (
	defaultMaxBatchNets = 100000
	defaultMaxBodyBytes = 256 << 20
)

// Server is the HTTP service over one shared multi-technology engine.
// It implements http.Handler; the caller owns the engine and the
// http.Server around it (see cmd/ripd for the canonical wiring).
type Server struct {
	eng   *engine.Multi
	opts  Options
	mux   *http.ServeMux
	slots chan struct{}
	start time.Time

	draining atomic.Bool
	ready    atomic.Bool
	m        metrics

	// testHookAdmitted, when non-nil, runs after a request is admitted
	// and before solving begins; concurrency tests use it to hold
	// admission slots open deterministically.
	testHookAdmitted func(route string)
}

// New builds the service over an existing multi-technology engine. The
// engine is shared, not owned: the caller may keep using it directly,
// and the /metrics cache counters reflect that traffic too.
func New(eng *engine.Multi, opts Options) *Server {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 4 * eng.Workers()
	}
	if opts.MaxBatchNets <= 0 {
		opts.MaxBatchNets = defaultMaxBatchNets
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBodyBytes
	}
	s := &Server{
		eng:   eng,
		opts:  opts,
		mux:   http.NewServeMux(),
		slots: make(chan struct{}, opts.MaxInFlight),
		start: time.Now(),
	}
	s.ready.Store(true)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/front", s.handleFront)
	s.mux.HandleFunc("POST /v1/bus", s.handleBus)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	// /healthz predates the livez/readyz split; existing probes expect
	// readiness semantics (it failed while draining), so it aliases
	// /readyz.
	s.mux.HandleFunc("GET /healthz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// SetReady flips traffic readiness: ripd holds it false while a cache
// snapshot is still loading so load balancers route cold traffic to
// warm replicas first. Requests arriving while not ready are still
// served (they just miss the restoring cache); only /readyz changes.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// BeginShutdown puts the server into draining mode: /healthz starts
// failing and new optimize/batch requests are refused with 503, while
// already-admitted requests run to completion. Pair it with
// http.Server.Shutdown, which waits for those in-flight handlers.
func (s *Server) BeginShutdown() { s.draining.Store(true) }

// InFlight reports the number of requests currently being served.
func (s *Server) InFlight() int64 { return s.m.inflight.Load() }

// MaxInFlight reports the resolved admission bound (after defaulting),
// so operators log the number the server actually enforces.
func (s *Server) MaxInFlight() int { return s.opts.MaxInFlight }

// admit implements admission control: draining refuses with 503,
// saturation with 429 (both coded, both with Retry-After), otherwise a
// slot is taken and the returned release must be deferred.
func (s *Server) admit(w http.ResponseWriter, route string) (release func(), ok bool) {
	rm := s.m.route(route)
	if s.draining.Load() {
		rm.draining.Add(1)
		respond(w, http.StatusServiceUnavailable,
			api.CodedErrorResponse(api.CodeDraining, "", "", "server is shutting down"))
		return nil, false
	}
	select {
	case s.slots <- struct{}{}:
	default:
		rm.saturated.Add(1)
		respond(w, http.StatusTooManyRequests,
			api.CodedErrorResponse(api.CodeOverloaded, "", "",
				fmt.Sprintf("server saturated: %d requests in flight", s.opts.MaxInFlight)))
		return nil, false
	}
	rm.requests.Add(1)
	s.m.inflight.Add(1)
	begin := time.Now()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted(route)
	}
	return func() {
		rm.latency.observe(time.Since(begin))
		s.m.inflight.Add(-1)
		<-s.slots
	}, true
}

// requestCtx derives the solving context: the client's context, bounded
// by the per-request timeout when one is configured, and marked
// local-only when the request already took its one forwarding hop.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if r.Header.Get(cluster.ForwardHeader) != "" {
		ctx = cluster.WithLocalOnly(ctx)
	}
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.opts.RequestTimeout)
	}
	return context.WithCancel(ctx)
}

// statusFor maps an envelope code to its HTTP status — the single
// source of truth for every /v1/* error path.
func statusFor(code string) int {
	switch code {
	case api.CodeBadRequest, api.CodeUnknownTech, api.CodeUnsupportedVersion:
		return http.StatusBadRequest
	case api.CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	case api.CodeOverloaded:
		return http.StatusTooManyRequests
	case api.CodeDraining, api.CodeCanceled, api.CodePeerUnavailable:
		return http.StatusServiceUnavailable
	case api.CodeTimeout:
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

// respond writes the JSON payload, stamping Retry-After on the
// statuses a client should back off from and retry (shed load, drain,
// unreachable owner).
func respond(w http.ResponseWriter, status int, v any) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, v)
}

// fail writes one coded error, shaped for the endpoint (front=true
// emits a FrontResponse envelope).
func (s *Server) fail(w http.ResponseWriter, front bool, code, net, tech, msg string) {
	if front {
		respond(w, statusFor(code), api.CodedFrontErrorResponse(code, net, tech, msg))
		return
	}
	respond(w, statusFor(code), api.CodedErrorResponse(code, net, tech, msg))
}

// decodeSingle is the one decode-validate path behind /v1/optimize and
// /v1/front (their three formerly separate decode blocks): read the
// body (one request line of the shared wire format — a wrapper or a
// bare net, exactly like a JSONL batch line), parse it, resolve the
// technology, apply the default budget (optimize only; fronts need no
// budget) and validate. On failure the coded error envelope has been
// written and ok is false.
func (s *Server) decodeSingle(w http.ResponseWriter, r *http.Request, front bool) (api.Request, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		s.fail(w, front, bodyErrCode(err), "", "", "reading request: "+err.Error())
		return api.Request{}, false
	}
	req, err := api.ParseRequest(raw)
	if err != nil {
		s.fail(w, front, api.CodeBadRequest, "", "", err.Error())
		return api.Request{}, false
	}
	// An unknown technology is a client error, answered before solving —
	// the engine's resolve error lists every served node.
	if _, err := s.eng.Resolve(req.Tech); err != nil {
		s.m.netErrors.Add(1)
		s.fail(w, front, api.CodeUnknownTech, req.Name(), req.Tech, err.Error())
		return api.Request{}, false
	}
	validate := req.ValidateFront
	if !front {
		req.ApplyDefault(s.opts.DefaultTargetMult, 0)
		req.ApplyDefaultEps(s.opts.DefaultEps)
		req.ApplyDefaultCoupling(s.opts.DefaultAggressor, s.opts.DefaultScheme)
		validate = req.Validate
	}
	if err := validate(); err != nil {
		s.m.netErrors.Add(1)
		s.fail(w, front, api.ErrorCode(err), req.Name(), req.Tech, err.Error())
		return api.Request{}, false
	}
	return req, true
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, "optimize")
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	req, ok := s.decodeSingle(w, r, false)
	if !ok {
		return
	}
	res := s.eng.SolveContext(ctx, req.Job())
	s.m.nets.Add(1)
	status := http.StatusOK
	if res.Err != nil {
		s.m.netErrors.Add(1)
		status = statusFor(api.ErrorCode(res.Err))
	}
	respond(w, status, api.FromResult(res))
}

// handleFront serves one net's whole power–delay Pareto front: the same
// request body as /v1/optimize, but no budget is required — the response
// is the full trade-off curve the engine retains per net shape, so a
// client sweeps budgets (or reads off MinDelay) without any further
// solves. The curve is cached under the same shape-keyed entries the
// optimize path uses: a front queried here warms the cache for later
// optimize calls and vice versa.
func (s *Server) handleFront(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, "front")
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	req, ok := s.decodeSingle(w, r, true)
	if !ok {
		return
	}
	fr := s.eng.FrontContext(ctx, req.Job())
	s.m.nets.Add(1)
	status := http.StatusOK
	if fr.Err != nil {
		s.m.netErrors.Add(1)
		status = statusFor(api.ErrorCode(fr.Err))
	}
	respond(w, status, api.FromFrontResult(fr))
}

// handleBus serves joint bus co-optimization: a group of parallel
// tracks in adjacency order, co-decided per-track countermeasures out,
// with the group's savings against independent worst-case solves.
// Member solves run through the shared engine's worker pool and
// solution cache, so bus traffic warms the same per-shape entries line
// traffic uses — and under a cluster, each member is forwarded to its
// shape's owner like an ordinary pinned line job.
func (s *Server) handleBus(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, "bus")
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	req, ok := s.decodeBus(w, r)
	if !ok {
		return
	}
	br := s.eng.SolveBus(ctx, req.Job())
	s.m.nets.Add(uint64(len(req.Tracks)))
	status := http.StatusOK
	if br.Err != nil {
		s.m.netErrors.Add(1)
		status = statusFor(api.ErrorCode(br.Err))
	}
	respond(w, status, api.FromBusResult(br))
}

// decodeBus mirrors decodeSingle for the bus wire shape: read, decode,
// resolve the technology, cap the group size, apply the default budget
// and validate. On failure the coded bus envelope has been written.
func (s *Server) decodeBus(w http.ResponseWriter, r *http.Request) (api.BusRequest, bool) {
	failBus := func(code, tech, msg string) {
		respond(w, statusFor(code), api.CodedBusErrorResponse(code, tech, msg))
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		failBus(bodyErrCode(err), "", "reading request: "+err.Error())
		return api.BusRequest{}, false
	}
	var req api.BusRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		failBus(api.CodeBadRequest, "", "decoding bus request: "+err.Error())
		return api.BusRequest{}, false
	}
	if _, err := s.eng.Resolve(req.Tech); err != nil {
		s.m.netErrors.Add(1)
		failBus(api.CodeUnknownTech, req.Tech, err.Error())
		return api.BusRequest{}, false
	}
	// The array-batch net cap bounds bus width too: a bus IS a batch of
	// member solves, several per track.
	if len(req.Tracks) > s.opts.MaxBatchNets {
		failBus(api.CodeTooLarge, req.Tech,
			fmt.Sprintf("bus of %d tracks exceeds the %d-net limit", len(req.Tracks), s.opts.MaxBatchNets))
		return api.BusRequest{}, false
	}
	req.ApplyDefault(s.opts.DefaultTargetMult, 0)
	if err := req.Validate(); err != nil {
		s.m.netErrors.Add(1)
		failBus(api.ErrorCode(err), req.Tech, err.Error())
		return api.BusRequest{}, false
	}
	return req, true
}

// handleBatch accepts the two body shapes of the shared wire format: a
// JSON array (the nets.json shape, materialized and solved with
// RunContext) or a JSONL stream (ripcli's -batch shape, solved through
// the engine's bounded streaming window without materializing the
// input). Both emit results in input order with per-net error isolation.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, "batch")
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	br := bufio.NewReaderSize(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes), 64<<10)
	first, err := firstNonSpace(br)
	if err != nil {
		msg := "empty batch body"
		if !errors.Is(err, io.EOF) {
			msg = "reading batch body: " + err.Error()
		}
		s.fail(w, false, bodyErrCode(err), "", "", msg)
		return
	}
	if first == '[' {
		s.batchArray(ctx, w, br)
		return
	}
	s.batchJSONL(ctx, w, br)
}

func (s *Server) batchArray(ctx context.Context, w http.ResponseWriter, br *bufio.Reader) {
	// Elements decode individually (wrapper or bare net, like JSONL
	// lines), so one malformed element fails alone, not the whole batch.
	var raws []json.RawMessage
	if err := json.NewDecoder(br).Decode(&raws); err != nil {
		s.fail(w, false, bodyErrCode(err), "", "", "decoding batch array: "+err.Error())
		return
	}
	if len(raws) > s.opts.MaxBatchNets {
		s.fail(w, false, api.CodeTooLarge, "", "",
			fmt.Sprintf("batch of %d nets exceeds the %d-net limit (stream JSONL instead)", len(raws), s.opts.MaxBatchNets))
		return
	}
	jobs := make([]engine.Job, len(raws))
	parseErrs := make(map[int]string)
	for i, raw := range raws {
		req, err := api.ParseRequest(raw)
		if err != nil {
			parseErrs[i] = fmt.Sprintf("element %d: %v", i, err)
			continue // zero job: the engine reports it as a nil-net failure
		}
		req.ApplyDefault(s.opts.DefaultTargetMult, 0)
		req.ApplyDefaultEps(s.opts.DefaultEps)
		req.ApplyDefaultCoupling(s.opts.DefaultAggressor, s.opts.DefaultScheme)
		jobs[i] = req.Job()
	}
	results := s.eng.RunContext(ctx, jobs)
	out := make([]api.Response, len(results))
	for i, res := range results {
		out[i] = api.FromResult(res)
		if msg, ok := parseErrs[i]; ok {
			// The element never parsed, so its zero job's default-node
			// attribution would be fiction: report only the failure.
			out[i] = api.CodedErrorResponse(api.CodeBadRequest, "", "", msg)
		}
		s.m.nets.Add(1)
		if out[i].Err != nil {
			s.m.netErrors.Add(1)
		}
	}
	// Bulk machine-to-machine payload: compact, not indented — a 100k-net
	// array would roughly double in size under writeJSON's indentation.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(out) //nolint:errcheck // response committed
}

func (s *Server) batchJSONL(ctx context.Context, w http.ResponseWriter, br *bufio.Reader) {
	// A JSONL batch is genuinely full duplex: result lines stream out
	// while the body is still arriving. Without EnableFullDuplex,
	// net/http reacts to the first flushed response byte by discarding
	// and closing the unconsumed request body (the issue-15527 deadlock
	// guard), which truncates the stream mid-line whenever solves outrun
	// the upload — warm-cache or tree batches reliably do. Best effort:
	// a transport that cannot do full duplex keeps the old behavior.
	http.NewResponseController(w).EnableFullDuplex() //nolint:errcheck
	w.Header().Set("Content-Type", "application/x-ndjson")
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan engine.Job)
	results := s.eng.RunStreamContext(ctx, jobs)
	// parseErrs maps job index → parse failure so a malformed line is
	// reported at its position with its cause. Guarded: the feeder
	// writes while the result loop reads.
	var mu sync.Mutex
	parseErrs := make(map[int]string)
	note := func(idx int, msg string) {
		mu.Lock()
		parseErrs[idx] = msg
		mu.Unlock()
	}
	go func() {
		defer close(jobs)
		fed, err := api.FeedJSONL(ctx, br, api.FeedOptions{
			DefaultMult:      s.opts.DefaultTargetMult,
			DefaultEps:       s.opts.DefaultEps,
			DefaultAggressor: s.opts.DefaultAggressor,
			DefaultScheme:    s.opts.DefaultScheme,
		}, jobs, note)
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			// The body broke mid-stream (client gone, line too long).
			// Already-admitted jobs still produce their result lines;
			// the read failure itself goes out as a trailing error
			// line at the index after the last job, where the result
			// loop picks it up once the stream drains.
			note(fed, fmt.Sprintf("reading body after %d nets: %v", fed, err))
		}
	}()

	// abort cancels solving and drains the stream so the engine's
	// workers and sequencer retire instead of leaking when the client
	// can no longer be written to.
	abort := func() {
		cancel()
		for range results {
		}
	}
	bw := bufio.NewWriterSize(w, 64<<10)
	enc := json.NewEncoder(bw)
	flusher, _ := w.(http.Flusher)
	emitted := 0
	for res := range results {
		resp := api.FromResult(res)
		mu.Lock()
		if msg, ok := parseErrs[res.Index]; ok {
			// Unparsed lines carry only their failure, not the default
			// node's tech attribution (see batchArray).
			resp = api.CodedErrorResponse(api.CodeBadRequest, "", "", msg)
		}
		mu.Unlock()
		s.m.nets.Add(1)
		if resp.Err != nil {
			s.m.netErrors.Add(1)
		}
		if err := enc.Encode(resp); err != nil {
			abort()
			return
		}
		if err := bw.Flush(); err != nil {
			abort()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		emitted++
	}
	// A body read error was recorded past the last admitted job: the
	// input was truncated, and silence would look like success.
	mu.Lock()
	msg, truncated := parseErrs[emitted]
	mu.Unlock()
	if truncated {
		s.m.netErrors.Add(1)
		enc.Encode(api.CodedErrorResponse(api.CodeBadRequest, "", "", msg)) //nolint:errcheck // best-effort trailer
	}
	bw.Flush()
}

// handleLivez is pure process liveness: if this handler runs, the
// process is up. Draining and snapshot loading do not fail it — a
// supervisor must not restart a replica for refusing traffic on
// purpose.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// handleReadyz is traffic readiness (also served at /healthz): 503
// while draining or while a cache snapshot load is still running, with
// the ring membership and snapshot age for operators.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.eng.CacheStats()
	status, code := "ok", http.StatusOK
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case !s.ready.Load():
		status, code = "loading", http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status":        status,
		"workers":       s.eng.Workers(),
		"inflight":      s.m.inflight.Load(),
		"max_inflight":  s.opts.MaxInFlight,
		"cache_entries": st.Entries,
		"technologies":  s.eng.Names(),
		"default_tech":  s.eng.Default(),
		"uptime_s":      time.Since(s.start).Seconds(),
	}
	if s.opts.Cluster != nil {
		body["self"] = s.opts.Cluster.Self()
		body["peers"] = s.opts.Cluster.Peers()
	}
	if s.opts.LastSnapshot != nil {
		if last := s.opts.LastSnapshot(); !last.IsZero() {
			body["snapshot_age_s"] = time.Since(last).Seconds()
		}
	}
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	s.m.writePrometheus(&buf, s.eng, s.start, s.draining.Load(), s.opts.Cluster, s.opts.LastSnapshot)
	w.Write(buf.Bytes())
}

// firstNonSpace peeks past leading JSON whitespace to sniff the body
// shape ('[' = array, anything else = JSONL), leaving the byte unread.
func firstNonSpace(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return b, br.UnreadByte()
		}
	}
}

// bodyErrCode maps a body read/decode failure to its envelope code:
// the MaxBytesReader cap is the client sending too much (too_large,
// retriable by streaming JSONL), anything else is a malformed request.
func bodyErrCode(err error) string {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return api.CodeTooLarge
	}
	return api.CodeBadRequest
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}
