package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAnalyticCompareSmallRun(t *testing.T) {
	s := smallSetup(t, 3, []float64{1.15, 1.5})
	res, err := AnalyticCompare(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		total := row.ModelInfeasible + row.RealViolations + row.Compared
		if total > res.TotalTargets {
			t.Errorf("%s: bucket counts %d exceed targets %d", row.Net, total, res.TotalTargets)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "analytical baseline") {
		t.Error("render missing title")
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "real_violations") {
		t.Error("CSV missing header")
	}
}

func TestAnalyticBaselineActuallyStruggles(t *testing.T) {
	// Across a real sweep the closed-form scheme must exhibit the failure
	// mode the paper describes: at least some real-net violations or
	// meaningful width overhead somewhere in the corpus.
	s := smallSetup(t, 4, []float64{1.1, 1.3, 1.6, 1.9})
	res, err := AnalyticCompare(s)
	if err != nil {
		t.Fatal(err)
	}
	anyTrouble := false
	for _, row := range res.Rows {
		if row.RealViolations > 0 || row.ModelInfeasible > 0 || row.MeanWidthVsRIPPct > 1 {
			anyTrouble = true
		}
	}
	if !anyTrouble {
		t.Error("analytical baseline matched RIP everywhere — the motivating gap vanished")
	}
}

func TestTreeStudySmallRun(t *testing.T) {
	s := smallSetup(t, 1, []float64{1.3})
	res, err := TreeStudy(s, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		if !row.Feasible {
			t.Errorf("instance %d infeasible", i)
			continue
		}
		if row.HybridWidth > row.CoarseWidth+1e-9 {
			t.Errorf("instance %d: hybrid (%g) worse than coarse (%g)", i, row.HybridWidth, row.CoarseWidth)
		}
		if row.HybridOptions >= row.FineOptions {
			t.Errorf("instance %d: hybrid did more DP work than fine DP", i)
		}
	}
	if res.WorkRatio <= 1 {
		t.Errorf("work ratio %g should exceed 1", res.WorkRatio)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Tree extension") {
		t.Error("render missing title")
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestZoneSweepSmallRun(t *testing.T) {
	s := smallSetup(t, 2, []float64{1.3, 1.7})
	res, err := ZoneSweep(s, []float64{0, 0.3}, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	free, zoned := res.Rows[0], res.Rows[1]
	if free.FractionPct != 0 || zoned.FractionPct != 30 {
		t.Errorf("fractions: %g, %g", free.FractionPct, zoned.FractionPct)
	}
	// Zone-free row compares against itself: zero penalty and inflation.
	if free.MeanWidthVsFreePct != 0 || free.TMinInflationPct != 0 {
		t.Errorf("free row should be the reference: %+v", free)
	}
	// Zones restrict placement, so τmin cannot shrink.
	if zoned.TMinInflationPct < -1e-6 {
		t.Errorf("τmin should not improve under zones: %+v", zoned)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "zone") {
		t.Error("render missing title")
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}
