package tree

import (
	"github.com/rip-eda/rip/internal/repeater"
	"github.com/rip-eda/rip/internal/tech"
)

// Options configures tree buffer insertion.
type Options struct {
	// Library is the set of allowed buffer widths (units of u).
	Library repeater.Library
	// Tech supplies the unit-buffer constants Rs, Co, Cp.
	Tech *tech.Technology
	// DriverWidth is the root driver size in u.
	DriverWidth float64
	// MaxSlack switches the objective from min-width-with-nonnegative-
	// slack to maximize-worst-slack (the classic van Ginneken objective).
	MaxSlack bool
}

// Solution is a buffer placement on the tree.
type Solution struct {
	// Buffers maps node ID → buffer width for every inserted buffer.
	Buffers map[int]float64
	// Slack is the worst slack over sinks (≥ 0 when feasible).
	Slack float64
	// TotalWidth is the summed buffer width (the power objective).
	TotalWidth float64
	// Feasible reports whether every sink meets its required time.
	Feasible bool
	// Stats counts generated and kept DP options.
	Stats Stats
}

// Stats describes the DP's work.
type Stats struct {
	// Candidates counts buffer sites the sweep visited — the tree
	// analogue of the two-pin DP's candidate locations.
	Candidates                  int
	Generated, Kept, MaxPerNode int
}

// Insert computes a minimum-total-width buffer placement meeting every
// sink's required arrival time (or, with MaxSlack, the placement that
// maximizes the worst slack). It is the Lillis-style power-aware extension
// of van Ginneken's algorithm to trees, and runs on a pooled Solver so
// one-shot callers still hit warm arenas; loops should own a Solver and
// call Solver.Insert / Solver.InsertInto directly.
func Insert(t *Tree, opts Options) (Solution, error) {
	s := AcquireSolver()
	defer ReleaseSolver(s)
	return s.Insert(t, opts)
}
