package rip

import (
	"fmt"
	"os"

	"github.com/rip-eda/rip/internal/engine"
	"github.com/rip-eda/rip/internal/snapshot"
	"github.com/rip-eda/rip/internal/tech"
)

// Multi-technology types re-exported from the implementation packages.
type (
	// TechRegistry is a named collection of technology nodes — built-ins
	// plus JSON-loaded custom nodes — assembled once, then frozen. A
	// frozen registry is immutable, which is what lets one registry back
	// a running multi-technology service without synchronization.
	TechRegistry = tech.Registry
	// MultiEngine routes each job to a per-technology engine by the
	// job's Tech name: per-node solution caches (a T90 result can never
	// serve a T180 request) over one shared worker budget.
	MultiEngine = engine.Multi
)

// NewTechRegistry returns an empty, unfrozen registry. Custom nodes
// register under their Technology.Name via Register or LoadFile/LoadDir.
func NewTechRegistry() *TechRegistry { return tech.NewRegistry() }

// BuiltinTechRegistry returns an unfrozen registry preloaded with the
// four built-in nodes under "180nm", "130nm", "90nm" and "65nm" (aliases
// "t180"... and the descriptive names also resolve).
func BuiltinTechRegistry() *TechRegistry { return tech.DefaultRegistry() }

// LoadTechnology reads one node from a JSON file (the schema
// Technology.Write emits) and validates it.
func LoadTechnology(path string) (*Technology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := tech.Read(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return t, nil
}

// NewMultiEngine builds one batch engine per node in the registry behind
// a single facade, freezing the registry. Jobs select their node with
// BatchJob.Tech (empty = defaultTech); results and batch output lines
// carry the canonical node name they were solved under. Worker budget,
// ordering, error isolation and the ownership rule are as in NewEngine —
// a long-lived process should create exactly one MultiEngine and thread
// it through every consumer, the way cmd/ripd does.
func NewMultiEngine(reg *TechRegistry, defaultTech string, opts EngineOptions) (*MultiEngine, error) {
	return engine.NewMulti(reg, defaultTech, opts)
}

// SnapshotStats summarizes one cache snapshot save or restore: sections
// and entries written, or accepted and skipped on load.
type SnapshotStats = snapshot.Stats

// SaveCacheSnapshot persists every per-node Pareto-front cache of the
// engine to one versioned, checksummed file, written atomically
// (temp file + rename) so a crash mid-save never corrupts the previous
// snapshot.
func SaveCacheSnapshot(path string, m *MultiEngine) (SnapshotStats, error) {
	return snapshot.SaveMulti(path, m)
}

// LoadCacheSnapshot restores a snapshot written by SaveCacheSnapshot
// into the engine's caches. Sections recorded under a technology the
// engine does not serve — or under a node whose electrical identity has
// changed since the save — are skipped whole; structurally unsound
// entries are dropped individually. Restored entries are still verified
// against the actual net before being served, so a stale or corrupt
// snapshot can cost misses but never wrong answers.
func LoadCacheSnapshot(path string, m *MultiEngine) (SnapshotStats, error) {
	return snapshot.LoadMulti(path, m)
}
