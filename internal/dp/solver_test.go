package dp

import (
	"math/rand"
	"testing"

	"github.com/rip-eda/rip/internal/delay"
	"github.com/rip-eda/rip/internal/repeater"
	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/units"
	"github.com/rip-eda/rip/internal/wire"
)

// corpusInstances enumerates the deterministic instances the dp unit tests
// exercise — the paperish multi-segment net and the zone-heavy net, across
// libraries, pitches and both objectives.
func corpusInstances(t *testing.T) []struct {
	name string
	ev   *delay.Evaluator
	opts Options
} {
	t.Helper()
	zoneLine, err := wire.New([]wire.Segment{
		{Length: 8e-3, ROhmPerM: 8e4, CFPerM: 2.3e-10, Layer: "metal4"},
	}, []wire.Zone{{Start: 1e-3, End: 7e-3}})
	if err != nil {
		t.Fatal(err)
	}
	paperish := evalFor(t, paperishLine(t))
	zoned := evalFor(t, zoneLine)
	tmin, err := MinimumDelay(paperish, Options{Library: lib(t, 10, 10, 40), Pitch: 200 * units.Micron})
	if err != nil {
		t.Fatal(err)
	}

	var out []struct {
		name string
		ev   *delay.Evaluator
		opts Options
	}
	add := func(name string, ev *delay.Evaluator, opts Options) {
		out = append(out, struct {
			name string
			ev   *delay.Evaluator
			opts Options
		}{name, ev, opts})
	}
	for _, mult := range []float64{1.05, 1.1, 1.3, 1.5, 2.0} {
		add("paperish-minpower-g10", paperish, Options{
			Library: lib(t, 10, 10, 40), Pitch: 200 * units.Micron,
			Objective: MinPower, Target: mult * tmin,
		})
		add("paperish-minpower-g40", paperish, Options{
			Library: lib(t, 10, 40, 10), Pitch: 200 * units.Micron,
			Objective: MinPower, Target: mult * tmin,
		})
	}
	add("paperish-mindelay", paperish, Options{Library: lib(t, 10, 10, 40), Pitch: 200 * units.Micron, Objective: MinDelay})
	add("paperish-infeasible", paperish, Options{
		Library: lib(t, 10, 10, 10), Pitch: 200 * units.Micron, Objective: MinPower, Target: 1e-12,
	})
	add("paperish-coarse", paperish, Options{
		Library: lib(t, 80, 80, 5), Pitch: 200 * units.Micron, Objective: MinPower, Target: 1.5 * tmin,
	})
	add("zoned-mindelay", zoned, Options{Library: lib(t, 10, 40, 10), Pitch: 200 * units.Micron, Objective: MinDelay})
	add("zoned-minpower", zoned, Options{
		Library: lib(t, 10, 40, 10), Pitch: 200 * units.Micron, Objective: MinPower, Target: 2 * tmin,
	})
	return out
}

// TestSolverMatchesReferenceCorpus differences the rewritten kernel against
// the preserved pre-Solver implementation on the deterministic corpus: the
// outputs must agree bit-exactly, including the work stats.
func TestSolverMatchesReferenceCorpus(t *testing.T) {
	s := NewSolver()
	for _, c := range corpusInstances(t) {
		got, gotErr := s.Solve(c.ev, c.opts)
		want, wantErr := solveReference(c.ev, c.opts)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", c.name, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		diffSolutions(t, c.name, got, want)
	}
}

// randomInstance builds one randomized net + DP options pair. Instances
// deliberately mix multi-segment lines, forbidden zones, explicit and
// pitch-generated candidates, both objectives, and occasionally duplicate
// library widths quantized to a coarse grid (tie-heavy pruning).
func randomInstance(tb testing.TB, rng *rand.Rand) (*delay.Evaluator, Options) {
	tb.Helper()
	nseg := 1 + rng.Intn(4)
	segs := make([]wire.Segment, nseg)
	for i := range segs {
		segs[i] = wire.Segment{
			Length:   (0.5 + 2.5*rng.Float64()) * 1e-3,
			ROhmPerM: (4 + rng.Float64()*6) * 1e4,
			CFPerM:   (1.5 + 1.2*rng.Float64()) * 1e-10,
		}
	}
	var zones []wire.Zone
	total := 0.0
	for _, s := range segs {
		total += s.Length
	}
	if rng.Intn(3) == 0 {
		start := total * (0.2 + 0.4*rng.Float64())
		end := start + total*0.2*rng.Float64()
		zones = append(zones, wire.Zone{Start: start, End: end})
	}
	line, err := wire.New(segs, zones)
	if err != nil {
		tb.Fatal(err)
	}
	ev, err := delay.NewEvaluator(&wire.Net{
		Name: "rand", Line: line,
		DriverWidth:   40 + rng.Float64()*300,
		ReceiverWidth: 20 + rng.Float64()*100,
	}, tech.T180())
	if err != nil {
		tb.Fatal(err)
	}

	nw := 1 + rng.Intn(8)
	ws := make([]float64, nw)
	for i := range ws {
		if rng.Intn(2) == 0 {
			// Coarse grid: duplicates and shared Co·w classes are likely.
			ws[i] = float64(1+rng.Intn(6)) * 60
		} else {
			ws[i] = 10 + rng.Float64()*390
		}
	}
	libr, err := repeater.NewLibrary(ws)
	if err != nil {
		tb.Fatal(err)
	}

	opts := Options{Library: libr}
	if rng.Intn(2) == 0 {
		opts.Pitch = (150 + 400*rng.Float64()) * units.Micron
	} else {
		ncand := 1 + rng.Intn(7)
		for i := 0; i < ncand; i++ {
			x := total * rng.Float64()
			if line.Legal(x) {
				opts.Positions = append(opts.Positions, x)
			}
		}
		if len(opts.Positions) == 0 {
			opts.Pitch = 300 * units.Micron
			opts.Positions = nil
		}
	}
	if rng.Intn(4) == 0 {
		opts.Objective = MinDelay
	} else {
		opts.Objective = MinPower
		opts.Target = ev.MinUnbuffered() * (0.2 + 1.1*rng.Float64())
	}
	return ev, opts
}

// TestSolverMatchesReferenceRandom differences the kernel against the
// reference on ≥1000 randomized nets (the acceptance bar for the rewrite).
func TestSolverMatchesReferenceRandom(t *testing.T) {
	trials := 1200
	if testing.Short() {
		trials = 200
	}
	rng := rand.New(rand.NewSource(2005))
	s := NewSolver()
	for trial := 0; trial < trials; trial++ {
		ev, opts := randomInstance(t, rng)
		got, gotErr := s.Solve(ev, opts)
		want, wantErr := solveReference(ev, opts)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		diffSolutions(t, "trial", got, want)
		if got.Feasible {
			// The kernel's incremental delay must also match a full
			// re-evaluation of its own assignment.
			if err := ev.Validate(got.Assignment); err != nil {
				t.Fatalf("trial %d: illegal assignment: %v", trial, err)
			}
		}
	}
}

// TestSolverMatchesReferenceWithDuplicatePositions checks the explicit
// position path (validation errors included) agrees with the reference.
func TestSolverValidationErrorsMatchReference(t *testing.T) {
	ev := evalFor(t, paperishLine(t))
	good := lib(t, 10, 40, 10)
	cases := []Options{
		{Pitch: 200 * units.Micron, Objective: MinPower, Target: 1e-9},               // empty library
		{Library: good, Pitch: 200 * units.Micron, Objective: MinPower},              // missing target
		{Library: good, Objective: MinDelay},                                         // no positions or pitch
		{Library: good, Positions: []float64{4e-3}, Objective: MinDelay},             // inside zone
		{Library: good, Positions: []float64{1e-3, 1e-3}, Objective: MinDelay},       // duplicate
		{Library: good, Positions: []float64{2e-3, 1e-3, 3e-3}, Objective: MinDelay}, // unsorted but valid
	}
	s := NewSolver()
	for i, opts := range cases {
		_, gotErr := s.Solve(ev, opts)
		_, wantErr := solveReference(ev, opts)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("case %d: error mismatch: %v vs %v", i, gotErr, wantErr)
		}
		if gotErr != nil && wantErr != nil && gotErr.Error() != wantErr.Error() {
			t.Fatalf("case %d: error text %q != reference %q", i, gotErr, wantErr)
		}
	}
}

// TestSolverReuseAcrossInstances checks one Solver solving very different
// instances back to back (the pipeline's coarse→fine shape) stays exact.
func TestSolverReuseAcrossInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSolver()
	// Interleave two instance streams through one Solver and fresh
	// reference runs; scratch bleed-through between solves would show up
	// as a mismatch on the second stream.
	for trial := 0; trial < 60; trial++ {
		ev, opts := randomInstance(t, rng)
		for pass := 0; pass < 2; pass++ {
			got, gotErr := s.Solve(ev, opts)
			want, wantErr := solveReference(ev, opts)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("trial %d pass %d: error mismatch: %v vs %v", trial, pass, gotErr, wantErr)
			}
			if gotErr == nil {
				diffSolutions(t, "reuse", got, want)
			}
		}
	}
}

// TestSolveIntoReusesAssignmentBuffers pins the zero-allocation contract:
// steady-state SolveInto on a warm Solver performs no heap allocations,
// including reconstruction into the reused Solution.
func TestSolveIntoZeroAllocSteadyState(t *testing.T) {
	ev := evalFor(t, paperishLine(t))
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"minpower", Options{Library: lib(t, 10, 40, 10), Pitch: 200 * units.Micron, Objective: MinPower, Target: 2e-9}},
		{"mindelay", Options{Library: lib(t, 10, 40, 10), Pitch: 200 * units.Micron, Objective: MinDelay}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSolver()
			var sol Solution
			for i := 0; i < 3; i++ { // warm the arenas
				if err := s.SolveInto(&sol, ev, tc.opts); err != nil {
					t.Fatal(err)
				}
			}
			if !sol.Feasible {
				t.Fatal("warmup solve must be feasible")
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := s.SolveInto(&sol, ev, tc.opts); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state SolveInto allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// TestSolveIsolatesResults ensures Solve's returned Solutions are safe to
// retain: a later solve on the same (pooled) Solver must not mutate them.
func TestSolveIsolatesResults(t *testing.T) {
	ev := evalFor(t, paperishLine(t))
	opts := Options{Library: lib(t, 10, 40, 10), Pitch: 200 * units.Micron, Objective: MinDelay}
	s := NewSolver()
	first, err := s.Solve(ev, opts)
	if err != nil {
		t.Fatal(err)
	}
	snapPos := append([]float64(nil), first.Assignment.Positions...)
	snapW := append([]float64(nil), first.Assignment.Widths...)
	if _, err := s.Solve(ev, Options{Library: lib(t, 80, 80, 5), Pitch: 400 * units.Micron, Objective: MinDelay}); err != nil {
		t.Fatal(err)
	}
	for i := range snapPos {
		if first.Assignment.Positions[i] != snapPos[i] || first.Assignment.Widths[i] != snapW[i] {
			t.Fatal("a later solve mutated a previously returned Solution")
		}
	}
}
