package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/rip-eda/rip/internal/api"
	"github.com/rip-eda/rip/internal/engine"
	"github.com/rip-eda/rip/internal/netgen"
	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/wire"
)

func corpus(t *testing.T, seed int64, n int) []*wire.Net {
	t.Helper()
	node := tech.T180()
	cfg, err := netgen.DefaultConfig(node)
	if err != nil {
		t.Fatal(err)
	}
	nets, err := netgen.Corpus(seed, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nets
}

// newTestServer builds a server over a fresh single-node (180nm) multi
// engine. workers=1 makes cache hit/miss sequences deterministic
// (duplicate in-flight signatures race by design under parallelism).
func newTestServer(t *testing.T, workers int, opts Options) (*Server, *engine.Multi) {
	t.Helper()
	return newTechServer(t, workers, opts, "180nm")
}

// newTechServer builds a server over a multi engine serving the listed
// built-in nodes; the first is the default.
func newTechServer(t *testing.T, workers int, opts Options, techs ...string) (*Server, *engine.Multi) {
	t.Helper()
	reg := tech.NewRegistry()
	for _, name := range techs {
		if _, err := reg.RegisterBuiltin(name); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := engine.NewMulti(reg, techs[0], engine.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return New(eng, opts), eng
}

// techEngine unwraps one node's engine for per-technology stats.
func techEngine(t *testing.T, eng *engine.Multi, name string) *engine.Engine {
	t.Helper()
	e, ok := eng.Engine(name)
	if !ok {
		t.Fatalf("no engine for node %q", name)
	}
	return e
}

func post(t *testing.T, s *Server, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	return rr
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func decodeResponse(t *testing.T, rr *httptest.ResponseRecorder) api.Response {
	t.Helper()
	var resp api.Response
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response %q: %v", rr.Body.String(), err)
	}
	return resp
}

// TestOptimize: a well-formed single-net request solves and reports the
// solution in wire units.
func TestOptimize(t *testing.T) {
	s, _ := newTestServer(t, 4, Options{})
	net := corpus(t, 11, 1)[0]
	rr := post(t, s, "/v1/optimize", mustMarshal(t, api.Request{Net: net, TargetMult: 1.3}))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeResponse(t, rr)
	if resp.Error != "" {
		t.Fatalf("unexpected error: %s", resp.Error)
	}
	if !resp.Feasible {
		t.Fatal("corpus net at 1.3×τmin should be feasible")
	}
	if resp.Net != net.Name {
		t.Fatalf("response net %q, want %q", resp.Net, net.Name)
	}
	if resp.DelayNS <= 0 || resp.DelayNS > resp.TargetNS*(1+1e-12) {
		t.Fatalf("delay %g ns vs target %g ns", resp.DelayNS, resp.TargetNS)
	}
	if len(resp.PositionsUM) != len(resp.WidthsU) {
		t.Fatalf("positions/widths mismatch: %d vs %d", len(resp.PositionsUM), len(resp.WidthsU))
	}
}

// TestOptimizeRejectsBadRequests: malformed bodies and shape errors are
// 400s, and the engine is never consulted.
func TestOptimizeRejectsBadRequests(t *testing.T) {
	s, eng := newTestServer(t, 4, Options{})
	net := corpus(t, 13, 1)[0]
	cases := []struct {
		name string
		body []byte
	}{
		{"malformed", []byte(`{"net": `)},
		{"no net", []byte(`{"target_mult": 1.2}`)},
		{"no target", mustMarshal(t, api.Request{Net: net})},
		{"both targets", mustMarshal(t, api.Request{Net: net, TargetMult: 1.2, TargetNS: 1})},
	}
	for _, tc := range cases {
		rr := post(t, s, "/v1/optimize", tc.body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, rr.Code, rr.Body.String())
		}
	}
	if st := eng.CacheStats(); st.Hits+st.Misses+st.Rejected != 0 {
		t.Fatalf("bad requests reached the engine: %+v", st)
	}
	if rr := get(t, s, "/v1/optimize"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on optimize: status %d, want 405", rr.Code)
	}
}

// TestBatchArray: a JSON array mixing wrapper elements, bare nets (which
// inherit the server default budget) and a malformed element comes back
// in input order with the error isolated to its element.
func TestBatchArray(t *testing.T) {
	s, _ := newTestServer(t, 1, Options{DefaultTargetMult: 1.3})
	nets := corpus(t, 17, 2)
	bare := mustMarshal(t, nets[1]) // bare net, no wrapper
	elems := []json.RawMessage{
		mustMarshal(t, api.Request{Net: nets[0], TargetMult: 1.4}),
		bare,
		[]byte(`{"net": {"name": "broken", "segments": [{"length_um": -5}]}}`),
		mustMarshal(t, api.Request{Net: nets[0], TargetMult: 1.4}),
	}
	rr := post(t, s, "/v1/batch", mustMarshal(t, elems))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var resps []api.Response
	if err := json.Unmarshal(rr.Body.Bytes(), &resps); err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(elems) {
		t.Fatalf("%d responses for %d elements", len(resps), len(elems))
	}
	for i, want := range []bool{false, false, true, false} {
		if got := resps[i].Error != ""; got != want {
			t.Fatalf("element %d: error=%q, want error=%v", i, resps[i].Error, want)
		}
	}
	if !resps[1].Feasible {
		t.Fatal("bare net with server default budget should have solved")
	}
	if resps[0].Net != nets[0].Name || resps[1].Net != nets[1].Name {
		t.Fatalf("order not preserved: %q, %q", resps[0].Net, resps[1].Net)
	}
	if !resps[3].CacheHit {
		t.Fatal("repeated element should be served from the shared cache")
	}
}

// TestBatchArrayTooLarge: the array path is bounded; oversize batches
// are told to stream.
func TestBatchArrayTooLarge(t *testing.T) {
	s, _ := newTestServer(t, 4, Options{MaxBatchNets: 2, DefaultTargetMult: 1.3})
	net := corpus(t, 19, 1)[0]
	elems := []json.RawMessage{mustMarshal(t, net), mustMarshal(t, net), mustMarshal(t, net)}
	rr := post(t, s, "/v1/batch", mustMarshal(t, elems))
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", rr.Code, rr.Body.String())
	}
}

// TestBatchJSONL: streamed bodies come back as one response line per
// input line, in input order, with parse failures isolated to their line.
func TestBatchJSONL(t *testing.T) {
	s, _ := newTestServer(t, 1, Options{DefaultTargetMult: 1.3})
	nets := corpus(t, 23, 3)
	var body bytes.Buffer
	for _, n := range nets {
		body.Write(mustMarshal(t, n))
		body.WriteByte('\n')
	}
	body.WriteString("this is not json\n")
	body.Write(mustMarshal(t, api.Request{Net: nets[0], TargetMult: 1.3}))
	body.WriteByte('\n')

	rr := post(t, s, "/v1/batch", body.Bytes())
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var resps []api.Response
	sc := bufio.NewScanner(rr.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var r api.Response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", len(resps), err)
		}
		resps = append(resps, r)
	}
	if len(resps) != 5 {
		t.Fatalf("%d response lines, want 5", len(resps))
	}
	for i := 0; i < 3; i++ {
		if resps[i].Net != nets[i].Name || resps[i].Error != "" || !resps[i].Feasible {
			t.Fatalf("line %d: %+v", i, resps[i])
		}
	}
	if !strings.Contains(resps[3].Error, "line 4") {
		t.Fatalf("parse failure should name its line: %q", resps[3].Error)
	}
	if resps[4].Error != "" || !resps[4].CacheHit {
		t.Fatalf("final repeat should be a cache hit: %+v", resps[4])
	}
}

// TestBatchWarmCacheVisibleInMetrics: the acceptance scenario — a
// repeated-net batch over HTTP leaves engine cache hits visible at
// /metrics, proving the cache is a cross-request asset.
func TestBatchWarmCacheVisibleInMetrics(t *testing.T) {
	s, _ := newTestServer(t, 1, Options{DefaultTargetMult: 1.25})
	net := corpus(t, 29, 1)[0]
	const repeats = 6
	var body bytes.Buffer
	for i := 0; i < repeats; i++ {
		body.Write(mustMarshal(t, net))
		body.WriteByte('\n')
	}
	// Two requests: the second is served warm from the first's work.
	for i := 0; i < 2; i++ {
		if rr := post(t, s, "/v1/batch", body.Bytes()); rr.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rr.Code)
		}
	}
	rr := get(t, s, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rr.Code)
	}
	text := rr.Body.String()
	hits := metricValue(t, text, `rip_cache_hits_total{tech="180nm"}`)
	if hits < 2*repeats-1 {
		t.Fatalf("cache hits %g, want ≥ %d:\n%s", hits, 2*repeats-1, text)
	}
	if nets := metricValue(t, text, "rip_nets_total"); nets != 2*repeats {
		t.Fatalf("nets total %g, want %d", nets, 2*repeats)
	}
	if reqs := metricValue(t, text, `rip_requests_total{route="batch"}`); reqs != 2 {
		t.Fatalf("batch requests %g, want 2", reqs)
	}
	if cnt := metricValue(t, text, `rip_http_request_duration_seconds_count{route="batch"}`); cnt != 2 {
		t.Fatalf("latency count %g, want 2", cnt)
	}
	if inf := metricValue(t, text, "rip_requests_inflight"); inf != 0 {
		t.Fatalf("inflight gauge %g after quiescence", inf)
	}
	// DP work counters: the one full solve ran τmin + pipeline dynamic
	// programs; the repeats were cache hits and added nothing, so the
	// counters reflect a single net's DP workload.
	if solves := metricValue(t, text, `rip_dp_solves_total{tech="180nm"}`); solves < 2 {
		t.Fatalf("dp solves %g, want ≥ 2 (τmin + coarse)", solves)
	}
	gen := metricValue(t, text, `rip_dp_generated_total{tech="180nm"}`)
	kept := metricValue(t, text, `rip_dp_kept_total{tech="180nm"}`)
	if gen == 0 || kept == 0 || kept > gen {
		t.Fatalf("dp work counters inconsistent: generated %g kept %g", gen, kept)
	}
	if mpl := metricValue(t, text, `rip_dp_max_per_level{tech="180nm"}`); mpl == 0 {
		t.Fatalf("dp max-per-level gauge not populated")
	}
	if aborts := metricValue(t, text, `rip_dp_budget_aborts_total{tech="180nm"}`); aborts != 0 {
		t.Fatalf("unexpected dp budget aborts %g", aborts)
	}
}

// metricValue extracts one sample from the Prometheus text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// TestHealthz: healthy → 200 ok; draining → 503, so load balancers stop
// routing to a server that is shutting down.
func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, 4, Options{})
	rr := get(t, s, "/healthz")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"ok"`) {
		t.Fatalf("healthz %d: %s", rr.Code, rr.Body.String())
	}
	s.BeginShutdown()
	rr = get(t, s, "/healthz")
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), `"draining"`) {
		t.Fatalf("draining healthz %d: %s", rr.Code, rr.Body.String())
	}
	if v := metricValue(t, get(t, s, "/metrics").Body.String(), "rip_draining"); v != 1 {
		t.Fatalf("rip_draining %g, want 1", v)
	}
}

// TestEmptyBatchBody: an empty body is a 400, not a hang or empty 200.
func TestEmptyBatchBody(t *testing.T) {
	s, _ := newTestServer(t, 4, Options{})
	if rr := post(t, s, "/v1/batch", nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rr.Code)
	}
}

// TestOptimizeEps: a request's "eps" is solved relaxed with attribution
// echoed on the wire; an out-of-range eps is a 400 with the bad_request
// envelope; the server-wide default applies only to requests that carry
// no eps of their own, with an explicit 0 staying exact; and the ε
// metrics series appear on /metrics.
func TestOptimizeEps(t *testing.T) {
	s, eng := newTestServer(t, 1, Options{DefaultEps: 0.02})
	net := corpus(t, 17, 1)[0]
	eps := func(v float64) *float64 { return &v }

	// Explicit eps on the request.
	rr := post(t, s, "/v1/optimize", mustMarshal(t, api.Request{Net: net, TargetMult: 1.3, Eps: eps(0.1)}))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeResponse(t, rr)
	if !resp.Feasible || resp.Eps != 0.1 {
		t.Fatalf("eps echo: feasible=%v eps=%g", resp.Feasible, resp.Eps)
	}
	if resp.EpsBound == nil {
		t.Fatal("ε answer dropped eps_bound (a certified 0 must still be emitted)")
	}
	if b := *resp.EpsBound; b < 0 || b > 1 {
		t.Fatalf("eps_bound %g outside [0,1]", b)
	}
	if resp.DelayNS > resp.TargetNS*(1+1e-12) {
		t.Fatalf("ε answer misses budget: %g > %g", resp.DelayNS, resp.TargetNS)
	}

	// No eps: the server default (0.02) applies.
	rr = post(t, s, "/v1/optimize", mustMarshal(t, api.Request{Net: net, TargetMult: 1.3}))
	if resp = decodeResponse(t, rr); resp.Eps != 0.02 {
		t.Fatalf("default eps not applied: %g", resp.Eps)
	}

	// Explicit zero beats the default.
	rr = post(t, s, "/v1/optimize", mustMarshal(t, api.Request{Net: net, TargetMult: 1.3, Eps: eps(0)}))
	if resp = decodeResponse(t, rr); resp.Eps != 0 {
		t.Fatalf("explicit eps=0 overridden: %g", resp.Eps)
	}
	if resp.EpsBound != nil {
		t.Fatalf("exact answer carries eps_bound %g", *resp.EpsBound)
	}

	// Out of range is a 400 before solving.
	rr = post(t, s, "/v1/optimize", mustMarshal(t, api.Request{Net: net, TargetMult: 1.3, Eps: eps(0.9)}))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("eps=0.9: status %d, want 400 (%s)", rr.Code, rr.Body.String())
	}
	if resp = decodeResponse(t, rr); resp.Err == nil || resp.Err.Code != api.CodeBadRequest {
		t.Fatalf("eps=0.9 envelope: %+v", resp.Err)
	}

	// The ε counters moved, and /metrics renders their series.
	if st := techEngine(t, eng, "180nm").EpsStats(); st.Solves == 0 || st.Answers == 0 {
		t.Fatalf("ε stats did not move: %+v", st)
	}
	body := get(t, s, "/metrics").Body.String()
	for _, series := range []string{
		"rip_dp_eps_solves_total", "rip_dp_eps_pruned_total",
		"rip_dp_eps_answers_total", "rip_dp_eps_bound_bucket",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("metrics missing %s", series)
		}
	}
}

// TestFrontEps: /v1/front honors an explicit request eps (echoed on the
// response) but never inherits the server default — curve queries stay
// exact unless the client opts in.
func TestFrontEps(t *testing.T) {
	s, _ := newTestServer(t, 1, Options{DefaultEps: 0.02})
	net := corpus(t, 19, 1)[0]
	eps := func(v float64) *float64 { return &v }

	rr := post(t, s, "/v1/front", mustMarshal(t, api.Request{Net: net}))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var fr api.FrontResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Eps != 0 {
		t.Fatalf("front inherited the server default eps: %g", fr.Eps)
	}

	rr = post(t, s, "/v1/front", mustMarshal(t, api.Request{Net: net, Eps: eps(0.1)}))
	if err := json.Unmarshal(rr.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Eps != 0.1 || len(fr.Points) == 0 {
		t.Fatalf("ε front: eps=%g points=%d", fr.Eps, len(fr.Points))
	}

	rr = post(t, s, "/v1/front", mustMarshal(t, api.Request{Net: net, Eps: eps(-1)}))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("front eps=-1: status %d, want 400", rr.Code)
	}
}
