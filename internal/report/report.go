// Package report renders a solved repeater insertion instance as a
// human-readable engineering report: net summary, pipeline phases, the
// per-stage delay budget, power breakdown, delay-metric cross-check and an
// ASCII sketch of the line. The ripcli tool and the chip-flow example use
// it; keeping it in one place keeps every consumer's output consistent.
package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/rip-eda/rip/internal/core"
	"github.com/rip-eda/rip/internal/delay"
	"github.com/rip-eda/rip/internal/moments"
	"github.com/rip-eda/rip/internal/power"
	"github.com/rip-eda/rip/internal/tech"
	"github.com/rip-eda/rip/internal/units"
	"github.com/rip-eda/rip/internal/wire"
)

// Options controls optional report sections.
type Options struct {
	// Stages includes the per-stage Elmore breakdown.
	Stages bool
	// Metrics includes the Elmore-vs-D2M comparison.
	Metrics bool
	// Sketch includes the ASCII line drawing.
	Sketch bool
	// SketchWidth is the sketch's column count (default 64).
	SketchWidth int
}

// Write renders the full report for a solved instance.
func Write(w io.Writer, net *wire.Net, t *tech.Technology, res core.Result, target float64, opts Options) error {
	if err := net.Validate(); err != nil {
		return err
	}
	if err := t.Validate(); err != nil {
		return err
	}
	ev, err := delay.NewEvaluator(net, t)
	if err != nil {
		return err
	}
	pm, err := power.NewModel(t)
	if err != nil {
		return err
	}
	sol := res.Solution

	fmt.Fprintf(w, "=== %s ===\n", net.Name)
	fmt.Fprintf(w, "line: %s over %d segments, %d forbidden zones; driver %gu, receiver %gu\n",
		units.Meters(net.Line.Length()), net.Line.NumSegments(), len(net.Line.Zones()),
		net.DriverWidth, net.ReceiverWidth)
	fmt.Fprintf(w, "wire totals: R %.1f Ω, C %s\n", net.Line.TotalR(), units.Farads(net.Line.TotalC()))
	fmt.Fprintf(w, "target: %s\n", units.Seconds(target))

	if !sol.Feasible {
		fmt.Fprintln(w, "RESULT: INFEASIBLE — no assignment in the searched space meets the target")
		return nil
	}
	fmt.Fprintf(w, "result: %d repeaters, Σw = %.1fu, delay %s (slack %s), phase %q\n",
		sol.Assignment.N(), sol.TotalWidth, units.Seconds(sol.Delay),
		units.Seconds(target-sol.Delay), res.Report.Picked)
	for i := range sol.Assignment.Positions {
		fmt.Fprintf(w, "  r%-2d  x = %-10s  w = %.0fu\n", i+1,
			units.Meters(sol.Assignment.Positions[i]), sol.Assignment.Widths[i])
	}

	b := pm.Report(sol.TotalWidth, net.Line.TotalC())
	fmt.Fprintf(w, "power: repeaters %s + wire %s = %s\n",
		units.Watts(b.RepeaterW), units.Watts(b.WireW), units.Watts(b.TotalW()))

	rep := res.Report
	if rep.Picked != core.PhaseUnbuffered {
		fmt.Fprintf(w, "phases: coarse DP %.1fu (%s) → REFINE %.1fu continuous (%s, %d moves) → final DP %.1fu (%s)\n",
			rep.CoarseDP.TotalWidth, rep.CoarseTime.Round(1000),
			rep.Refined.TotalWidth, rep.RefineTime.Round(1000), rep.Refined.Moves,
			rep.FinalDP.TotalWidth, rep.FinalTime.Round(1000))
		if rep.Library.Size() > 0 {
			fmt.Fprintf(w, "concise library: %s over %d candidate locations\n",
				rep.Library, len(rep.Candidates))
		}
	}

	if opts.Stages {
		fmt.Fprintln(w, "stage breakdown (Elmore):")
		fmt.Fprintln(w, "  stage      from →  to          self     drive   wireload  wireself     total")
		for i, s := range ev.Stages(sol.Assignment) {
			fmt.Fprintf(w, "  %-5d %9s → %-9s %9s %9s %9s %9s %9s\n", i,
				units.Meters(s.From), units.Meters(s.To),
				units.Seconds(s.Self), units.Seconds(s.Drive),
				units.Seconds(s.WireLoad), units.Seconds(s.WireSelf), units.Seconds(s.Total()))
		}
	}

	if opts.Metrics {
		m, err := moments.Both(ev, sol.Assignment)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "metrics: Elmore %s (optimizer bound), D2M %s (ratio %.3f)\n",
			units.Seconds(m.Elmore), units.Seconds(m.D2M), m.Ratio())
	}

	if opts.Sketch {
		cols := opts.SketchWidth
		if cols <= 0 {
			cols = 64
		}
		fmt.Fprintf(w, "driver %s receiver\n", Sketch(net.Line, sol.Assignment, cols))
	}
	return nil
}

// Sketch draws the line as a character row: '=' wire, 'X' forbidden zone,
// '|' repeater.
func Sketch(line *wire.Line, a delay.Assignment, cols int) string {
	if cols <= 0 {
		cols = 64
	}
	row := []byte(strings.Repeat("=", cols))
	total := line.Length()
	for _, z := range line.Zones() {
		lo := int(z.Start / total * float64(cols))
		hi := int(z.End / total * float64(cols))
		for c := lo; c < hi && c < cols; c++ {
			row[c] = 'X'
		}
	}
	for _, x := range a.Positions {
		c := int(x / total * float64(cols))
		if c >= cols {
			c = cols - 1
		}
		row[c] = '|'
	}
	return string(row)
}
