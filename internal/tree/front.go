package tree

import (
	"cmp"
	"math"
	"slices"
	"sort"
)

// FrontPoint is one point of a tree's power–slack trade-off curve: the
// cheapest placement achieving its driver Slack over the solve's option
// space. On a zero-RAT clone (the MinArrival convention) −Slack is the
// worst-sink arrival time, so the front doubles as a power–arrival curve.
type FrontPoint struct {
	// Slack is the driver slack of the placement, q − (Rs·Cp + Rs/wd·c).
	Slack float64
	// TotalWidth is Σw, the power objective.
	TotalWidth float64
	// Buffers maps node ID to inserted buffer width.
	Buffers map[int]float64
}

// Front is a tree's root Pareto front: Slack strictly decreasing,
// TotalWidth strictly decreasing, no dominated points. Front[0] is the
// maximum-slack point (maximum power) and Front[len-1] the cheapest.
type Front []FrontPoint

// At returns the index of the minimum-power point with Slack ≥ minSlack —
// the same placement a fresh Insert with that requirement would pick —
// and false when no point reaches it (including NaN requirements). For a
// uniform timing budget T answered from a zero-RAT front, the requirement
// is −T (arrival ≤ T); for embedded deadlines it is 0.
func (f Front) At(minSlack float64) (int, bool) {
	if len(f) == 0 || math.IsNaN(minSlack) || !(f[0].Slack >= minSlack) {
		return 0, false
	}
	// Rightmost point with Slack ≥ minSlack: slacks strictly decrease.
	i := sort.Search(len(f), func(i int) bool { return f[i].Slack < minSlack })
	return i - 1, true
}

// MaxSlack returns the front's best achievable slack — the leftmost point
// — or −Inf for an empty front. On a zero-RAT clone its negation is the
// minimum worst-sink arrival, matching MinArrival bit-for-bit over the
// same option space.
func (f Front) MaxSlack() float64 {
	if len(f) == 0 {
		return math.Inf(-1)
	}
	return f[0].Slack
}

// InsertFront runs one width-aware bottom-up sweep and extracts the root
// Pareto front over driver slack, one reconstructed placement per point.
// Options.MaxSlack is ignored (the sweep is always width-aware, never
// slack-bounded, so one front answers every slack requirement). Each
// point's Buffers map is freshly allocated and safe to retain.
func (s *Solver) InsertFront(t *Tree, opts Options) (Front, Stats, error) {
	stats, err := s.sweep(t, opts, true)
	if err != nil {
		return nil, Stats{}, err
	}
	ts := opts.Tech
	widths := s.widths
	n := len(t.nodes)

	rootOpts := s.arena[s.nodeOff[0] : s.nodeOff[0]+s.nodeCnt[0]]
	type rootOpt struct {
		slack float64
		w     float64
		idx   int32
	}
	roots := make([]rootOpt, 0, len(rootOpts))
	for i, o := range rootOpts {
		slack := o.q - (ts.Rs*ts.Cp + ts.Rs/opts.DriverWidth*o.c)
		roots = append(roots, rootOpt{slack: slack, w: o.w, idx: int32(i)})
	}
	// Skyline sweep: best slack first, and keep a point only when its
	// width strictly undercuts every slacker-or-equal point. The kept
	// point where the record first drops to width w* is the max-slack,
	// earliest-arena option of that width — exactly the option the Insert
	// driver loop picks for any slack requirement that admits it.
	slices.SortFunc(roots, func(a, b rootOpt) int {
		if a.slack != b.slack {
			return cmp.Compare(b.slack, a.slack)
		}
		if a.w != b.w {
			return cmp.Compare(a.w, b.w)
		}
		return cmp.Compare(a.idx, b.idx)
	})
	front := make(Front, 0, 8)
	bestW := math.Inf(1)
	for _, r := range roots {
		if !(r.w < bestW) {
			continue
		}
		bestW = r.w
		// Reconstruct: walk the pre-order top-down, resolving each node's
		// chosen option, collecting buffers and child choices.
		buffers := make(map[int]float64)
		s.chosen[0] = r.idx
		total := 0.0
		for i := 0; i < n; i++ {
			o := s.arena[s.nodeOff[i]+s.chosen[i]]
			if o.buf >= 0 {
				w := widths[o.buf]
				buffers[t.nodes[i].ID] = w
				total += w
			}
			if o.kids >= 0 {
				for ci, childIdx := range s.childList[s.childStart[i]:s.childStart[i+1]] {
					s.chosen[childIdx] = s.kidArena[o.kids+int32(ci)]
				}
			}
		}
		front = append(front, FrontPoint{Slack: r.slack, TotalWidth: total, Buffers: buffers})
	}
	return front, stats, nil
}

// InsertFront runs the front extraction on a pooled Solver.
func InsertFront(t *Tree, opts Options) (Front, Stats, error) {
	s := AcquireSolver()
	defer ReleaseSolver(s)
	return s.InsertFront(t, opts)
}
