// Package core implements the RIP paper's contribution: the analytical
// REFINE solver (Fig. 5) and the hybrid RIP pipeline (Fig. 6) that wraps a
// coarse DP pass, REFINE, and a fine DP pass over a synthesized concise
// library and local candidate set.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/rip-eda/rip/internal/delay"
	"github.com/rip-eda/rip/internal/numeric"
)

// ErrInfeasible reports that no continuous width assignment at the given
// repeater positions can meet the timing target: even the delay-optimal
// (λ→∞) sizing is too slow.
var ErrInfeasible = errors.New("core: timing target infeasible at these positions")

// WidthResult is the outcome of the continuous width solve for fixed
// positions: the KKT point of the paper's Eqs. (5) and (8).
type WidthResult struct {
	// Widths are the continuous optimal widths w_1..w_n (units of u).
	Widths []float64
	// Lambda is the Lagrange multiplier; ∂τ/∂w_i = −1/λ at the optimum.
	Lambda float64
	// Delay is the achieved total delay; equals the target within
	// tolerance because the timing constraint is active (Eq. 5).
	Delay float64
	// TotalWidth is Σw, the power objective.
	TotalWidth float64
	// MinDelay is the delay of the delay-optimal sizing at these
	// positions (the λ→∞ limit), useful for feasibility diagnostics.
	MinDelay float64
}

// WidthOptions tunes SolveWidths. The zero value uses defaults.
type WidthOptions struct {
	// Tol is the relative tolerance on meeting the delay target
	// (default 1e-9).
	Tol float64
	// MaxOuter bounds the λ bisection iterations (default 200).
	MaxOuter int
	// Polish enables a full Newton–Raphson polish of the (w, λ) system
	// after bisection (default on; set SkipPolish to disable).
	SkipPolish bool
}

func (o WidthOptions) withDefaults() WidthOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 200
	}
	return o
}

// stageModel caches the position-dependent quantities of the staged Elmore
// delay so the width iteration never touches the wire tables.
type stageModel struct {
	n        int       // repeaters
	rs, co   float64   // tech constants
	wd, wr   float64   // terminal widths
	rw, cw   []float64 // per-stage wire R_i, C_i, i = 0..n
	constant float64   // Σ(Rs·Cp + M_i): width-independent delay
}

func newStageModel(ev *delay.Evaluator, positions []float64) *stageModel {
	a := delay.Assignment{Positions: positions, Widths: make([]float64, len(positions))}
	for i := range a.Widths {
		a.Widths[i] = 1 // placeholder; Lumped ignores widths
	}
	rw, cw := ev.Lumped(a)
	m := &stageModel{
		n:  len(positions),
		rs: ev.Tech.Rs,
		co: ev.Tech.Co,
		wd: ev.Wd,
		wr: ev.Wr,
		rw: rw,
		cw: cw,
	}
	// Width-independent part: per-stage Rs·Cp plus the distributed wire
	// self-delay of every stage.
	prev := 0.0
	total := ev.Line.Length()
	constant := 0.0
	for i := 0; i <= m.n; i++ {
		to := total
		if i < m.n {
			to = positions[i]
		}
		constant += ev.Tech.Rs*ev.Tech.Cp + ev.Line.M(prev, to)
		prev = to
	}
	m.constant = constant
	return m
}

// width returns w_i under the convention w_0 = wd, w_{n+1} = wr.
func (m *stageModel) width(w []float64, i int) float64 {
	switch {
	case i == 0:
		return m.wd
	case i == m.n+1:
		return m.wr
	default:
		return w[i-1]
	}
}

// delay evaluates the total Elmore delay for widths w (len n).
func (m *stageModel) delay(w []float64) float64 {
	sum := m.constant
	for i := 0; i <= m.n; i++ {
		wi := m.width(w, i)
		wnext := m.width(w, i+1)
		sum += m.rs/wi*(m.cw[i]+m.co*wnext) + m.rw[i]*m.co*wnext
	}
	return sum
}

// grad returns ∂τ/∂w_i (i = 1..n), Eq. (8)'s bracket.
func (m *stageModel) grad(w []float64, i int) float64 {
	a := m.rw[i-1] + m.rs/m.width(w, i-1)
	b := m.cw[i] + m.co*m.width(w, i+1)
	wi := w[i-1]
	return m.co*a - m.rs*b/(wi*wi)
}

// fixedPoint iterates the Gauss–Seidel update
//
//	w_i = √( λ·Rs·(C_i + Co·w_{i+1}) / (1 + λ·Co·(R_{i-1} + Rs/w_{i-1})) )
//
// to the KKT widths for a fixed λ. For λ = +Inf it converges to the
// delay-optimal sizing. The iteration is a contraction for the physical
// parameter ranges involved; 200 sweeps with 1e-13 tolerance is far more
// than it needs.
func (m *stageModel) fixedPoint(lambda float64, w []float64) {
	if w[0] == 0 {
		for i := range w {
			w[i] = 100 // neutral positive start
		}
	}
	for sweep := 0; sweep < 200; sweep++ {
		maxRel := 0.0
		for i := 1; i <= m.n; i++ {
			b := m.cw[i] + m.co*m.width(w, i+1)
			a := m.rw[i-1] + m.rs/m.width(w, i-1)
			var w2 float64
			if math.IsInf(lambda, 1) {
				w2 = m.rs * b / (m.co * a)
			} else {
				w2 = lambda * m.rs * b / (1 + lambda*m.co*a)
			}
			next := math.Sqrt(w2)
			rel := math.Abs(next-w[i-1]) / math.Max(next, 1e-30)
			if rel > maxRel {
				maxRel = rel
			}
			w[i-1] = next
		}
		if maxRel < 1e-13 {
			return
		}
	}
}

// SolveWidths computes the continuous optimal repeater widths and the
// Lagrange multiplier λ for fixed positions (Fig. 5, lines 1 and 7): the
// solution of Eq. (8) with the delay pinned to the target (Eq. 5).
//
// The solver is the robust nested scheme described in DESIGN.md: the delay
// of the KKT widths is monotone decreasing in λ, so an outer bisection on
// log λ brackets the target and an inner Gauss–Seidel fixed point supplies
// the widths; a damped Newton–Raphson on the full (w, λ) system polishes
// the result (this is the Newton–Raphson step the paper names). It returns
// ErrInfeasible when even the delay-optimal sizing misses the target.
func SolveWidths(ev *delay.Evaluator, positions []float64, target float64, opts WidthOptions) (WidthResult, error) {
	opts = opts.withDefaults()
	if !(target > 0) {
		return WidthResult{}, fmt.Errorf("core: target must be positive, got %g", target)
	}
	n := len(positions)
	if n == 0 {
		d := ev.Total(delay.Assignment{})
		res := WidthResult{Delay: d, MinDelay: d}
		if d > target {
			return res, ErrInfeasible
		}
		return res, nil
	}

	m := newStageModel(ev, positions)

	// Feasibility: the λ→∞ (delay-optimal) sizing.
	wOpt := make([]float64, n)
	m.fixedPoint(math.Inf(1), wOpt)
	minDelay := m.delay(wOpt)
	if minDelay > target {
		return WidthResult{MinDelay: minDelay}, ErrInfeasible
	}
	if minDelay == target {
		return WidthResult{
			Widths: wOpt, Lambda: math.Inf(1), Delay: minDelay,
			TotalWidth: sum(wOpt), MinDelay: minDelay,
		}, nil
	}

	// Outer search: f(λ) = delay(w*(λ)) − target is decreasing in λ.
	w := make([]float64, n)
	f := func(lambda float64) float64 {
		m.fixedPoint(lambda, w)
		return m.delay(w) - target
	}
	// Scale-aware starting point: λ ≈ 1/|∂τ/∂w| at the delay-optimal
	// sizing's half width, a reasonable mid-power sizing.
	seed := make([]float64, n)
	for i := range seed {
		seed[i] = wOpt[i] / 2
	}
	gscale := math.Abs(m.grad(seed, 1))
	start := 1.0
	if gscale > 0 {
		start = 1 / gscale
	}
	// Walk down until f(λ) > 0 (delay above target) to find the low edge.
	lo := start
	for i := 0; i < 200 && f(lo) <= 0; i++ {
		lo /= 4
	}
	if f(lo) <= 0 {
		// Even absurdly small widths meet the target: widths tend to zero;
		// treat the smallest probe as the answer (practically unreachable
		// for positive targets because delay → ∞ as w → 0).
		return WidthResult{}, fmt.Errorf("core: width solve degenerate at λ=%g", lo)
	}
	hi := lo
	for i := 0; i < 400 && f(hi) > 0; i++ {
		hi *= 4
	}
	if f(hi) > 0 {
		return WidthResult{MinDelay: minDelay}, fmt.Errorf("core: failed to bracket λ (target %g, minDelay %g)", target, minDelay)
	}
	lambda, err := numeric.Bisect(f, lo, hi, opts.Tol, opts.MaxOuter)
	if err != nil {
		return WidthResult{MinDelay: minDelay}, fmt.Errorf("core: λ bisection: %w", err)
	}
	m.fixedPoint(lambda, w)

	if !opts.SkipPolish {
		if pw, pl, ok := m.newtonPolish(w, lambda, target); ok {
			copy(w, pw)
			lambda = pl
		}
	}

	res := WidthResult{
		Widths:     append([]float64(nil), w...),
		Lambda:     lambda,
		Delay:      m.delay(w),
		TotalWidth: sum(w),
		MinDelay:   minDelay,
	}
	return res, nil
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// kktSystem is the full Newton system F(w, λ) = 0 of Eqs. (5) and (8):
// F_i = 1 + λ·∂τ/∂w_i for i = 1..n, F_{n+1} = τ(w) − target.
type kktSystem struct {
	m      *stageModel
	target float64
	// scale normalizes λ so the Jacobian is well conditioned: the solver
	// works with λ̂ = λ·scale ≈ O(1).
	scale float64
}

func (s *kktSystem) Dim() int { return s.m.n + 1 }

func (s *kktSystem) Eval(x, f []float64) {
	n := s.m.n
	w := x[:n]
	lambda := x[n] / s.scale
	for i := 1; i <= n; i++ {
		f[i-1] = 1 + lambda*s.m.grad(w, i)
	}
	f[n] = (s.m.delay(w) - s.target) / s.target
}

func (s *kktSystem) Jacobian(x []float64, jac *numeric.Matrix) {
	n := s.m.n
	w := x[:n]
	lambda := x[n] / s.scale
	m := s.m
	for i := 0; i < (n+1)*(n+1); i++ {
		jac.Data[i] = 0
	}
	for i := 1; i <= n; i++ {
		wi := w[i-1]
		b := m.cw[i] + m.co*m.width(w, i+1)
		// ∂F_i/∂w_{i-1}: through A_i = R_{i-1} + Rs/w_{i-1}.
		if i >= 2 {
			wprev := w[i-2]
			jac.Set(i-1, i-2, lambda*m.co*(-m.rs/(wprev*wprev)))
		}
		// ∂F_i/∂w_i.
		jac.Set(i-1, i-1, lambda*2*m.rs*b/(wi*wi*wi))
		// ∂F_i/∂w_{i+1}: through B_i = C_i + Co·w_{i+1}.
		if i <= n-1 {
			jac.Set(i-1, i, lambda*(-m.rs*m.co/(wi*wi)))
		}
		// ∂F_i/∂λ̂.
		jac.Set(i-1, n, m.grad(w, i)/s.scale)
	}
	// Delay row.
	for j := 1; j <= n; j++ {
		jac.Set(n, j-1, m.grad(w, j)/s.target)
	}
	jac.Set(n, n, 0)
}

// newtonPolish refines (w, λ) with the damped Newton iteration; it reports
// ok=false when Newton fails to improve on the bisection result, in which
// case the caller keeps the original values.
func (m *stageModel) newtonPolish(w []float64, lambda, target float64) ([]float64, float64, bool) {
	n := m.n
	sys := &kktSystem{m: m, target: target, scale: 1 / lambda}
	x0 := make([]float64, n+1)
	copy(x0, w)
	x0[n] = lambda * sys.scale // = 1 by construction
	clamp := func(x []float64) {
		for i := 0; i < n; i++ {
			if x[i] < 1e-6 {
				x[i] = 1e-6
			}
		}
		if x[n] < 1e-12 {
			x[n] = 1e-12
		}
	}
	res, err := numeric.NewtonSolve(sys, x0, numeric.NewtonOptions{MaxIter: 60, Tol: 1e-12, Clamp: clamp})
	if err != nil || !res.Converged {
		return nil, 0, false
	}
	return res.X[:n], res.X[n] / sys.scale, true
}
